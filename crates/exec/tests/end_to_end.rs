//! End-to-end tests: lambda calculus → TCAP → optimizer → physical plan →
//! vectorized execution, verified against straight-line Rust computations.

use pc_core::{Dataset, Job};
use pc_exec::{ExecConfig, LocalExecutor};
use pc_lambda::AggregateSpec;
use pc_object::{
    make_object, pc_object, AnyObj, BlockRef, Handle, PcResult, PcString, PcVec, SealedPage,
};
use pc_storage::StorageManager;

pc_object! {
    /// Employee record.
    pub struct Emp / EmpView {
        (salary, set_salary): i64,
        (dept_id, set_dept_id): i64,
        (name, set_name): Handle<PcString>,
    }
}

pc_object! {
    /// Department record.
    pub struct Dept / DeptView {
        (id, set_id): i64,
        (dname, set_dname): Handle<PcString>,
    }
}

pc_object! {
    /// Join output: employee + department names.
    pub struct Placement / PlacementView {
        (emp_name, set_emp_name): Handle<PcString>,
        (dept_name, set_dept_name): Handle<PcString>,
        (salary, set_salary): i64,
    }
}

pc_object! {
    /// Aggregation output.
    pub struct DeptStat / DeptStatView {
        (dept, set_dept): i64,
        (count, set_count): i64,
        (total, set_total): f64,
    }
}

fn setup(label: &str) -> LocalExecutor {
    let storage = StorageManager::in_temp(label).unwrap();
    LocalExecutor::new(
        storage,
        ExecConfig {
            batch_size: 64,
            page_size: 1 << 16,
            agg_partitions: 3,
            join_partitions: 4,
            morsel_rows: 128,
            ..ExecConfig::default()
        },
    )
}

fn load_emps(ex: &LocalExecutor, n: usize) {
    ex.storage.create_or_clear_set("db", "emps").unwrap();
    let mut writer = pc_lambda::SetWriter::new(1 << 16);
    for i in 0..n {
        writer
            .write_with(|| {
                let e = make_object::<Emp>()?;
                e.v().set_salary(30_000 + (i as i64 * 977) % 90_000)?;
                e.v().set_dept_id((i % 7) as i64)?;
                e.v().set_name(PcString::make(&format!("emp{i}"))?)?;
                Ok(e.erase())
            })
            .unwrap();
    }
    for page in writer.finish().unwrap() {
        ex.storage.append_page("db", "emps", page).unwrap();
    }
}

fn load_depts(ex: &LocalExecutor) {
    ex.storage.create_or_clear_set("db", "depts").unwrap();
    let mut writer = pc_lambda::SetWriter::new(1 << 16);
    for d in 0..7i64 {
        writer
            .write_with(|| {
                let dept = make_object::<Dept>()?;
                dept.v().set_id(d)?;
                dept.v().set_dname(PcString::make(&format!("dept{d}"))?)?;
                Ok(dept.erase())
            })
            .unwrap();
    }
    for page in writer.finish().unwrap() {
        ex.storage.append_page("db", "depts", page).unwrap();
    }
}

fn read_all<T: pc_object::PcObjType>(ex: &LocalExecutor, db: &str, set: &str) -> Vec<Handle<T>> {
    let mut out = Vec::new();
    for page in ex.storage.scan(db, set).unwrap() {
        let (_b, root) = SealedPage::from_bytes(&page.to_bytes())
            .unwrap()
            .open()
            .unwrap();
        let v = root.downcast::<PcVec<Handle<AnyObj>>>().unwrap();
        for h in v.iter() {
            out.push(h.assume::<T>());
        }
    }
    out
}

/// Expected salaries per the generator above.
fn expected_salaries(n: usize) -> Vec<(i64, i64)> {
    (0..n)
        .map(|i| (30_000 + (i as i64 * 977) % 90_000, (i % 7) as i64))
        .collect()
}

#[test]
fn selection_with_redundant_method_calls() {
    let ex = setup("sel");
    load_emps(&ex, 500);
    ex.storage.create_or_clear_set("db", "rich").unwrap();

    // The §7 example: salary > 50000 && salary < 100000 — two method calls
    // that the optimizer must fuse into one.
    let rich = Dataset::<Emp>::scan("db", "emps").filter(|e| {
        e.method("getSalary", |e| e.v().salary())
            .gt_const(50_000i64)
            .and(
                e.method("getSalary", |e| e.v().salary())
                    .lt_const(100_000i64),
            )
    });
    let mut q = Job::new()
        .add(rich.write_to("db", "rich"))
        .compile()
        .unwrap();
    let report = pc_tcap::optimize(&mut q.tcap);
    assert!(
        report.redundant_applies_removed >= 1,
        "CSE must fire: {report:?}\n{}",
        q.tcap
    );

    let stats = ex.execute(&q).unwrap();
    let got = read_all::<Emp>(&ex, "db", "rich");
    let expected: Vec<i64> = expected_salaries(500)
        .into_iter()
        .map(|(s, _)| s)
        .filter(|s| *s > 50_000 && *s < 100_000)
        .collect();
    assert_eq!(got.len(), expected.len());
    let mut got_salaries: Vec<i64> = got.iter().map(|e| e.v().salary()).collect();
    let mut want = expected;
    got_salaries.sort_unstable();
    want.sort_unstable();
    assert_eq!(got_salaries, want);
    assert!(stats.rows_in >= 500);
}

#[test]
fn two_way_join_with_pushdown() {
    let ex = setup("join");
    load_emps(&ex, 300);
    load_depts(&ex);
    ex.storage.create_or_clear_set("db", "placements").unwrap();

    // Join on dept id; also require salary > 60000 (pushable to the emp side).
    let joined = Dataset::<Emp>::scan("db", "emps").join(
        &Dataset::<Dept>::scan("db", "depts"),
        |e, d| {
            e.member("deptId", |e| e.v().dept_id())
                .eq(d.member("id", |d| d.v().id()))
                .and(
                    e.method("getSalary", |e| e.v().salary())
                        .gt_const(60_000i64),
                )
        },
        "mkPlacement",
        |e, d| {
            let p = make_object::<Placement>()?;
            p.v().set_emp_name(e.v().name())?;
            p.v().set_dept_name(d.v().dname())?;
            p.v().set_salary(e.v().salary())?;
            Ok(p)
        },
    );
    let mut q = Job::new()
        .add(joined.write_to("db", "placements"))
        .compile()
        .unwrap();
    let report = pc_tcap::optimize(&mut q.tcap);
    assert!(
        report.selections_pushed_down >= 1,
        "pushdown must fire:\n{}",
        q.tcap
    );

    ex.execute(&q).unwrap();
    let got = read_all::<Placement>(&ex, "db", "placements");
    let expected: Vec<(i64, i64)> = expected_salaries(300)
        .into_iter()
        .filter(|(s, _)| *s > 60_000)
        .collect();
    assert_eq!(
        got.len(),
        expected.len(),
        "one match per qualifying employee"
    );
    for p in &got {
        assert!(p.v().salary() > 60_000);
        // dept name must correspond to the employee's department
        let dn = p.v().dept_name();
        assert!(dn.as_str().starts_with("dept"), "{}", dn.as_str());
    }
}

struct DeptAgg;

impl AggregateSpec for DeptAgg {
    type In = Emp;
    type Key = i64;
    type Val = (i64, i64); // (count, total salary)
    type Out = DeptStat;

    fn key_of(&self, rec: &Handle<Emp>) -> PcResult<i64> {
        Ok(rec.v().dept_id())
    }

    fn init(&self, _b: &BlockRef, rec: &Handle<Emp>) -> PcResult<(i64, i64)> {
        Ok((1, rec.v().salary()))
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Emp>) -> PcResult<()> {
        let (c, t): (i64, i64) = b.read(slot);
        b.write(slot, (c + 1, t + rec.v().salary()));
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let (c1, t1): (i64, i64) = dst.read(dst_slot);
        let (c2, t2): (i64, i64) = src.read(src_slot);
        dst.write(dst_slot, (c1 + c2, t1 + t2));
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<DeptStat>> {
        let (c, t): (i64, i64) = b.read(slot);
        let out = make_object::<DeptStat>()?;
        out.v().set_dept(*key)?;
        out.v().set_count(c)?;
        out.v().set_total(t as f64)?;
        Ok(out)
    }
}

#[test]
fn aggregation_groups_and_sums() {
    let ex = setup("agg");
    load_emps(&ex, 700);
    ex.storage.create_or_clear_set("db", "deptstats").unwrap();

    let stats_ds = Dataset::<Emp>::scan("db", "emps").aggregate(DeptAgg);
    let mut q = Job::new()
        .add(stats_ds.write_to("db", "deptstats"))
        .compile()
        .unwrap();
    pc_tcap::optimize(&mut q.tcap);
    let stats = ex.execute(&q).unwrap();
    assert_eq!(stats.agg_groups, 7);

    let got = read_all::<DeptStat>(&ex, "db", "deptstats");
    assert_eq!(got.len(), 7);
    let mut expect: std::collections::HashMap<i64, (i64, i64)> = Default::default();
    for (s, d) in expected_salaries(700) {
        let e = expect.entry(d).or_insert((0, 0));
        e.0 += 1;
        e.1 += s;
    }
    for stat in got {
        let (c, t) = expect[&stat.v().dept()];
        assert_eq!(stat.v().count(), c);
        assert_eq!(stat.v().total(), t as f64);
    }
}

#[test]
fn multi_selection_flatmap() {
    let ex = setup("msel");
    load_emps(&ex, 100);
    ex.storage.create_or_clear_set("db", "tokens").unwrap();

    // Emit one PcVec<i64> [dept, k] object per k in 0..dept_id.
    let tokens = Dataset::<Emp>::scan("db", "emps").flat_map("expandDept", |e| {
        let d = e.v().dept_id();
        let mut out = Vec::new();
        for k in 0..d {
            let v = make_object::<PcVec<i64>>()?;
            v.push(d)?;
            v.push(k)?;
            out.push(v);
        }
        Ok(out)
    });
    let mut q = Job::new()
        .add(tokens.write_to("db", "tokens"))
        .compile()
        .unwrap();
    pc_tcap::optimize(&mut q.tcap);
    ex.execute(&q).unwrap();

    let got = read_all::<PcVec<i64>>(&ex, "db", "tokens");
    let expected: usize = expected_salaries(100)
        .iter()
        .map(|(_, d)| *d as usize)
        .sum();
    assert_eq!(got.len(), expected);
    for v in &got {
        assert!(v.get(1) < v.get(0));
    }
}

#[test]
fn three_way_join_cascades() {
    let ex = setup("join3");
    // Three tiny sets keyed to each other.
    for (set, n) in [("a", 10usize), ("b", 10), ("c", 10)] {
        ex.storage.create_or_clear_set("db", set).unwrap();
        let mut w = pc_lambda::SetWriter::new(1 << 16);
        for i in 0..n {
            w.write_with(|| {
                let e = make_object::<Emp>()?;
                e.v().set_salary(i as i64 * 10)?;
                e.v().set_dept_id((i % 5) as i64)?;
                e.v().set_name(PcString::make(&format!("{set}{i}"))?)?;
                Ok(e.erase())
            })
            .unwrap();
        }
        for page in w.finish().unwrap() {
            ex.storage.append_page("db", set, page).unwrap();
        }
    }
    ex.storage.create_or_clear_set("db", "triples").unwrap();

    let key = |e: &Handle<Emp>| e.v().dept_id();
    let triples = Dataset::<Emp>::scan("db", "a").join3(
        &Dataset::<Emp>::scan("db", "b"),
        &Dataset::<Emp>::scan("db", "c"),
        |a, b, c| {
            a.member("deptId", key)
                .eq(b.member("deptId", key))
                .and(b.member("deptId", key).eq(c.member("deptId", key)))
        },
        "mkTriple",
        |x, y, z| {
            let v = make_object::<PcVec<i64>>()?;
            v.push(x.v().dept_id())?;
            v.push(y.v().dept_id())?;
            v.push(z.v().dept_id())?;
            Ok(v)
        },
    );
    let mut q = Job::new()
        .add(triples.write_to("db", "triples"))
        .compile()
        .unwrap();
    pc_tcap::optimize(&mut q.tcap);
    ex.execute(&q).unwrap();

    let got = read_all::<PcVec<i64>>(&ex, "db", "triples");
    // Each dept 0..5 has 2 members in each set: 5 * 2^3 = 40 triples.
    assert_eq!(got.len(), 40);
    for v in &got {
        assert_eq!(v.get(0), v.get(1));
        assert_eq!(v.get(1), v.get(2));
    }
}

#[test]
fn tiny_pages_force_rolls_and_stay_correct() {
    let storage = StorageManager::in_temp("tiny").unwrap();
    let ex = LocalExecutor::new(
        storage,
        ExecConfig {
            batch_size: 16,
            page_size: 4096,
            agg_partitions: 2,
            join_partitions: 2,
            morsel_rows: 64,
            ..ExecConfig::default()
        },
    );
    load_emps(&ex, 400);
    ex.storage.create_or_clear_set("db", "all").unwrap();

    let all = Dataset::<Emp>::scan("db", "emps")
        .filter(|e| e.method("getSalary", |e| e.v().salary()).ge_const(0i64));
    let mut q = Job::new().add(all.write_to("db", "all")).compile().unwrap();
    pc_tcap::optimize(&mut q.tcap);
    let stats = ex.execute(&q).unwrap();
    assert_eq!(stats.rows_out, 400);
    assert!(stats.pages_written > 1, "4 KiB pages must roll");
    assert!(
        stats.max_zombie_pages <= 2,
        "Appendix C zombie cap violated"
    );
    let got = read_all::<Emp>(&ex, "db", "all");
    assert_eq!(got.len(), 400);
}

#[test]
fn morsel_scheduler_reports_stats_and_matches_single_threaded() {
    // Pin the thread counts explicitly (independent of PC_THREADS): the
    // 1-thread and 4-thread runs of the same query must produce
    // byte-identical output pages, and the morsel counters must be live.
    let run = |label: &str, threads: usize| -> (Vec<Vec<u8>>, pc_exec::ExecStats) {
        let storage = StorageManager::in_temp(label).unwrap();
        let ex = LocalExecutor::new(
            storage,
            ExecConfig {
                batch_size: 64,
                page_size: 1 << 16,
                agg_partitions: 3,
                join_partitions: 4,
                morsel_rows: 64,
                threads,
                ..ExecConfig::default()
            },
        );
        load_emps(&ex, 700);
        ex.storage.create_or_clear_set("db", "out").unwrap();
        let big = Dataset::<Emp>::scan("db", "emps").filter(|e| {
            e.method("getSalary", |e| e.v().salary())
                .gt_const(60_000i64)
        });
        let q = Job::new().add(big.write_to("db", "out")).compile().unwrap();
        let stats = ex.execute(&q).unwrap();
        let mut pages: Vec<Vec<u8>> = ex
            .storage
            .scan("db", "out")
            .unwrap()
            .iter()
            .map(|p| p.to_bytes())
            .collect();
        pages.sort();
        (pages, stats)
    };

    let (base, s1) = run("morsel_t1", 1);
    let (par, s4) = run("morsel_t4", 4);
    assert!(
        s1.morsels_dispatched > 0,
        "morsel queue must report dispatches: {s1:?}"
    );
    assert_eq!(s1.threads_used, 1);
    assert!(s4.morsels_dispatched > 0);
    assert!(
        s4.threads_used >= 1,
        "parallel run must report its thread count: {s4:?}"
    );
    assert_eq!(s1.rows_out, s4.rows_out);
    assert!(!base.is_empty());
    assert_eq!(
        base, par,
        "4-thread output pages must be byte-identical to the 1-thread run"
    );
}
