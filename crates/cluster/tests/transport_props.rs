//! Property tests for the transport delivery contract: arbitrary page
//! batches pushed through chunking/reassembly — and through seeded fault
//! injection with retries — come out **exactly once, in send order, with
//! no torn pages** (byte-identical `SealedPage`s).

use pc_cluster::{
    FaultKind, FaultSpec, FaultyTransport, StreamConfig, StreamTransport, Transport,
    TransportMeter, MASTER,
};
use pc_lambda::SetWriter;
use pc_object::{make_object, PcVec, SealedPage};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::Arc;

const WORKERS: usize = 3;

/// One send: (destination worker, payload tag, payload length).
fn batch_strategy() -> impl Strategy<Value = Vec<(usize, i64, usize)>> {
    pvec((0..WORKERS, 0..1_000i64, 1..40usize), 1..24)
}

/// A single sealed page whose payload is a `PcVec<i64>` derived from
/// (tag, len) — distinct specs give distinct bytes, so byte equality is a
/// real identity check.
fn page(tag: i64, len: usize) -> SealedPage {
    let mut w = SetWriter::new(1 << 14);
    w.write_with(|| {
        let v = make_object::<PcVec<i64>>()?;
        for i in 0..len as i64 {
            v.push(tag * 1_000 + i)?;
        }
        Ok(v.erase())
    })
    .unwrap();
    w.finish().unwrap().into_iter().next().unwrap()
}

/// Sends the batch, collects every destination, and checks the delivery
/// contract: per-destination page sequences byte-identical to send order.
fn check_delivery(
    t: &dyn Transport,
    batch: &[(usize, i64, usize)],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let pages: Vec<(usize, SealedPage)> = batch
        .iter()
        .map(|(dst, tag, len)| (*dst, page(*tag, *len)))
        .collect();
    for (dst, p) in &pages {
        t.send(MASTER, *dst, p)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(format!("send failed: {e}")))?;
    }
    for dst in 0..WORKERS {
        let got = t
            .collect(dst)
            .map_err(|e| {
                proptest::test_runner::TestCaseError::fail(format!("collect({dst}) failed: {e}"))
            })?
            .iter()
            .map(|p| p.to_bytes())
            .collect::<Vec<_>>();
        let want: Vec<Vec<u8>> = pages
            .iter()
            .filter(|(d, _)| *d == dst)
            .map(|(_, p)| p.to_bytes())
            .collect();
        prop_assert_eq!(
            got.len(),
            want.len(),
            "dst {}: duplicated or missing pages",
            dst
        );
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g, w, "dst {} page {}: torn or misordered", dst, i);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stream_chunking_reassembles_exactly_once_in_order(
        batch in batch_strategy(),
        chunk in 48usize..256,
    ) {
        let meter = Arc::new(TransportMeter::default());
        let t = StreamTransport::new(
            meter.clone(),
            StreamConfig {
                chunk_bytes: chunk, // far below page size: many frames/page
                frames_in_flight: 4,
                ..StreamConfig::default()
            },
        );
        check_delivery(&t, &batch)?;
        prop_assert_eq!(meter.pages_shuffled(), batch.len() as u64);
        prop_assert_eq!(meter.bytes_retransmitted(), 0);
    }

    #[test]
    fn faulty_transport_with_retries_preserves_the_contract(
        batch in batch_strategy(),
        seed in 0..u64::MAX,
        rate in 0u16..=256,
    ) {
        let meter = Arc::new(TransportMeter::default());
        let inner: Arc<dyn Transport> = Arc::new(StreamTransport::new(
            meter.clone(),
            StreamConfig {
                chunk_bytes: 96,
                frames_in_flight: 4,
                ..StreamConfig::default()
            },
        ));
        let spec = FaultSpec {
            rate,
            ..FaultSpec::seeded(
                seed,
                &[
                    FaultKind::Drop,
                    FaultKind::Delay,
                    FaultKind::Reorder,
                    FaultKind::Corrupt,
                ],
            )
        };
        let t = FaultyTransport::new(inner, meter.clone(), spec, WORKERS);
        t.arm();
        check_delivery(&t, &batch)?;
        // Exactly-once at the meter too: logical traffic counts each page
        // once no matter how many wire attempts it took.
        prop_assert_eq!(meter.pages_shuffled(), batch.len() as u64);
    }
}
