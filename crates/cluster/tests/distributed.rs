//! Distributed execution tests: the same queries the local engine runs,
//! now across multiple workers with page shuffles over the byte-copy
//! network.

use pc_cluster::testkit::{assert_runs_identical, set_bytes_sorted};
use pc_cluster::{ClusterConfig, PcCluster};
use pc_core::{Dataset, Job};
use pc_exec::ExecConfig;
use pc_lambda::{AggregateSpec, SetWriter};
use pc_object::{make_object, pc_object, AnyObj, BlockRef, Handle, PcResult, PcString, PcVec};

pc_object! {
    pub struct Emp / EmpView {
        (salary, set_salary): i64,
        (dept_id, set_dept_id): i64,
        (name, set_name): Handle<PcString>,
    }
}

pc_object! {
    pub struct Dept / DeptView {
        (id, set_id): i64,
        (dname, set_dname): Handle<PcString>,
    }
}

pc_object! {
    pub struct DeptStat / DeptStatView {
        (dept, set_dept): i64,
        (count, set_count): i64,
        (total, set_total): i64,
    }
}

fn cluster() -> PcCluster {
    PcCluster::new(ClusterConfig {
        workers: 3,
        exec: ExecConfig {
            batch_size: 32,
            page_size: 1 << 15,
            agg_partitions: 5,
            join_partitions: 8,
            morsel_rows: 64,
            ..ExecConfig::default()
        },
        broadcast_threshold: 1 << 20,
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn load_emps(c: &PcCluster, n: usize) {
    c.create_or_clear_set("db", "emps").unwrap();
    let mut w = SetWriter::new(1 << 14); // small pages → several per worker
    for i in 0..n {
        w.write_with(|| {
            let e = make_object::<Emp>()?;
            e.v().set_salary(30_000 + (i as i64 * 977) % 90_000)?;
            e.v().set_dept_id((i % 7) as i64)?;
            e.v().set_name(PcString::make(&format!("emp{i}"))?)?;
            Ok(e.erase())
        })
        .unwrap();
    }
    c.send_pages("db", "emps", w.finish().unwrap()).unwrap();
}

fn salaries(n: usize) -> Vec<(i64, i64)> {
    (0..n)
        .map(|i| (30_000 + (i as i64 * 977) % 90_000, (i % 7) as i64))
        .collect()
}

fn read_objs<T: pc_object::PcObjType>(c: &PcCluster, db: &str, set: &str) -> Vec<Handle<T>> {
    // Checked downcasts: a mistyped read is an error, not a garbage handle.
    c.scan_objects(db, set)
        .unwrap()
        .iter()
        .map(|h| h.downcast::<T>().unwrap())
        .collect()
}

#[test]
fn pages_distribute_across_workers() {
    let c = cluster();
    load_emps(&c, 600);
    let with_pages = c
        .workers
        .iter()
        .filter(|w| w.storage.page_count("db", "emps") > 0)
        .count();
    assert_eq!(with_pages, 3, "round-robin must reach every worker");
    assert_eq!(c.set_size("db", "emps"), 600);
}

#[test]
fn distributed_selection() {
    let c = cluster();
    load_emps(&c, 600);
    c.create_or_clear_set("db", "rich").unwrap();

    let rich = Dataset::<Emp>::scan("db", "emps").filter(|e| {
        e.method("getSalary", |e| e.v().salary())
            .gt_const(70_000i64)
    });
    let q = Job::new()
        .add(rich.write_to("db", "rich"))
        .compile()
        .unwrap();
    c.execute(&q).unwrap();

    let got = read_objs::<Emp>(&c, "db", "rich");
    let want = salaries(600)
        .into_iter()
        .filter(|(s, _)| *s > 70_000)
        .count();
    assert_eq!(got.len(), want);
    // Results remain distributed: no single worker should hold everything.
    let holders = c
        .workers
        .iter()
        .filter(|w| w.storage.page_count("db", "rich") > 0)
        .count();
    assert!(holders >= 2, "output pages should stay on their workers");
}

struct SumAgg;

impl AggregateSpec for SumAgg {
    type In = Emp;
    type Key = i64;
    type Val = (i64, i64);
    type Out = DeptStat;

    fn key_of(&self, rec: &Handle<Emp>) -> PcResult<i64> {
        Ok(rec.v().dept_id())
    }

    fn init(&self, _b: &BlockRef, rec: &Handle<Emp>) -> PcResult<(i64, i64)> {
        Ok((1, rec.v().salary()))
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Emp>) -> PcResult<()> {
        let (c, t): (i64, i64) = b.read(slot);
        b.write(slot, (c + 1, t + rec.v().salary()));
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let (c1, t1): (i64, i64) = dst.read(dst_slot);
        let (c2, t2): (i64, i64) = src.read(src_slot);
        dst.write(dst_slot, (c1 + c2, t1 + t2));
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<DeptStat>> {
        let (c, t): (i64, i64) = b.read(slot);
        let out = make_object::<DeptStat>()?;
        out.v().set_dept(*key)?;
        out.v().set_count(c)?;
        out.v().set_total(t)?;
        Ok(out)
    }
}

#[test]
fn distributed_aggregation_shuffles_map_pages() {
    let c = cluster();
    load_emps(&c, 1000);
    c.create_or_clear_set("db", "stats").unwrap();

    let stats_ds = Dataset::<Emp>::scan("db", "emps").aggregate(SumAgg);
    let q = Job::new()
        .add(stats_ds.write_to("db", "stats"))
        .compile()
        .unwrap();
    let run = c.execute(&q).unwrap();
    assert!(
        run.bytes_shuffled > 0,
        "aggregation must shuffle partition pages"
    );
    assert_eq!(run.exec.agg_groups, 7);

    let got = read_objs::<DeptStat>(&c, "db", "stats");
    assert_eq!(got.len(), 7);
    let mut expect: std::collections::HashMap<i64, (i64, i64)> = Default::default();
    for (s, d) in salaries(1000) {
        let e = expect.entry(d).or_insert((0, 0));
        e.0 += 1;
        e.1 += s;
    }
    for stat in got {
        let (cnt, tot) = expect[&stat.v().dept()];
        assert_eq!(stat.v().count(), cnt, "dept {}", stat.v().dept());
        assert_eq!(stat.v().total(), tot);
    }
}

#[test]
fn distributed_aggregation_is_deterministic_byte_for_byte() {
    // Regression guard for the vectorized two-phase path: the same
    // aggregation over the same data must produce byte-identical result
    // pages on every run — partition radix, grouped bulk upserts, combining
    // threads, and page-at-a-time merges are all deterministic.
    let run = || -> Vec<Vec<u8>> {
        let c = cluster();
        load_emps(&c, 800);
        c.create_or_clear_set("db", "stats").unwrap();
        let stats_ds = Dataset::<Emp>::scan("db", "emps").aggregate(SumAgg);
        let q = Job::new()
            .add(stats_ds.write_to("db", "stats"))
            .compile()
            .unwrap();
        c.execute(&q).unwrap();
        set_bytes_sorted(&c, "db", "stats").unwrap()
    };
    let first = run();
    let second = run();
    assert_runs_identical("two-phase aggregation, repeated run", &first, &second);
}

#[test]
fn distributed_broadcast_join() {
    let c = cluster();
    load_emps(&c, 400);
    c.create_or_clear_set("db", "depts").unwrap();
    let mut w = SetWriter::new(1 << 14);
    for d in 0..7i64 {
        w.write_with(|| {
            let dept = make_object::<Dept>()?;
            dept.v().set_id(d)?;
            dept.v().set_dname(PcString::make(&format!("dept{d}"))?)?;
            Ok(dept.erase())
        })
        .unwrap();
    }
    c.send_pages("db", "depts", w.finish().unwrap()).unwrap();
    c.create_or_clear_set("db", "pairs").unwrap();

    // depts (small) is the left dataset → the build side; emps streams
    // and probes.
    let joined = Dataset::<Dept>::scan("db", "depts").join(
        &Dataset::<Emp>::scan("db", "emps"),
        |d, e| {
            d.member("id", |d| d.v().id())
                .eq(e.member("deptId", |e| e.v().dept_id()))
        },
        "pair",
        |d, e| {
            let v = make_object::<PcVec<i64>>()?;
            v.push(d.v().id())?;
            v.push(e.v().dept_id())?;
            v.push(e.v().salary())?;
            Ok(v)
        },
    );
    let q = Job::new()
        .add(joined.write_to("db", "pairs"))
        .compile()
        .unwrap();
    let run = c.execute(&q).unwrap();
    assert!(
        run.tables_broadcast >= 1,
        "join must broadcast its build side"
    );

    let got = read_objs::<PcVec<i64>>(&c, "db", "pairs");
    assert_eq!(
        got.len(),
        400,
        "every employee matches exactly one department"
    );
    let mut total = 0i64;
    for v in &got {
        assert_eq!(v.get(0), v.get(1));
        total += v.get(2);
    }
    assert_eq!(total, salaries(400).iter().map(|(s, _)| *s).sum::<i64>());
}

#[test]
fn worker_type_catalogs_fault_like_so_shipping() {
    let c = cluster();
    load_emps(&c, 100);
    c.create_or_clear_set("db", "out").unwrap();

    let all = Dataset::<Emp>::scan("db", "emps")
        .filter(|e| e.method("getSalary", |e| e.v().salary()).ge_const(0i64));
    let q = Job::new().add(all.write_to("db", "out")).compile().unwrap();
    c.execute(&q).unwrap();
    // Every worker that processed pages resolved the root type exactly once.
    for w in &c.workers {
        assert!(
            w.types.fetches() <= 2,
            "type fetched repeatedly on worker {}",
            w.id
        );
    }
    let _ = <AnyObj as pc_object::PcObjType>::type_code();
}

#[test]
fn queries_survive_cold_storage() {
    // Evict everything to the file store, then query: pages must fault back
    // from disk byte-identically (the Table 3 "hot vs cold" axis).
    let c = cluster();
    load_emps(&c, 300);
    for w in &c.workers {
        w.storage.flush_all().unwrap();
    }
    let misses_before: u64 = c
        .workers
        .iter()
        .map(|w| w.storage.pool().stats().misses)
        .sum();
    c.create_or_clear_set("db", "cold_out").unwrap();

    let out = Dataset::<Emp>::scan("db", "emps").filter(|e| {
        e.method("getSalary", |e| e.v().salary())
            .gt_const(50_000i64)
    });
    let q = Job::new()
        .add(out.write_to("db", "cold_out"))
        .compile()
        .unwrap();
    c.execute(&q).unwrap();

    let got = read_objs::<Emp>(&c, "db", "cold_out");
    let want = salaries(300)
        .into_iter()
        .filter(|(s, _)| *s > 50_000)
        .count();
    assert_eq!(got.len(), want);
    let misses_after: u64 = c
        .workers
        .iter()
        .map(|w| w.storage.pool().stats().misses)
        .sum();
    assert!(
        misses_after > misses_before,
        "cold scan must fault pages from files"
    );
}
