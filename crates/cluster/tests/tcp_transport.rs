//! The real-socket transport end to end: byte-identical delivery against
//! the in-process baseline, heartbeat-driven failure detection beating the
//! collect deadline, metered backoff reconnection after a crash-restart,
//! and corruption converting into clean retransmits or typed errors —
//! never garbage pages.

use pc_cluster::testkit::set_bytes_sorted;
use pc_cluster::{
    ClusterConfig, PcCluster, TcpConfig, TcpTransport, Transport, TransportKind, TransportMeter,
    MASTER,
};
use pc_core::{Dataset, Job};
use pc_exec::ExecConfig;
use pc_lambda::SetWriter;
use pc_object::{make_object, pc_object, Handle, PcError, PcString, PcVec, SealedPage};
use std::sync::Arc;
use std::time::{Duration, Instant};

pc_object! {
    pub struct Emp / EmpView {
        (salary, set_salary): i64,
        (dept_id, set_dept_id): i64,
        (name, set_name): Handle<PcString>,
    }
}

fn page(tag: i64) -> SealedPage {
    let mut w = SetWriter::new(1 << 14);
    w.write_with(|| {
        let v = make_object::<PcVec<i64>>()?;
        for i in 0..64 {
            v.push(tag * 1_000 + i)?;
        }
        Ok(v.erase())
    })
    .unwrap();
    w.finish().unwrap().into_iter().next().unwrap()
}

/// A tight config so liveness tests run in milliseconds, not seconds.
fn quick_config() -> TcpConfig {
    TcpConfig {
        chunk_bytes: 256, // several frames per page
        heartbeat_interval: Duration::from_millis(20),
        suspect_after: 3,
        collect_deadline: Duration::from_secs(5),
        ..TcpConfig::default()
    }
}

#[test]
fn sockets_deliver_exactly_once_in_order() {
    let meter = Arc::new(TransportMeter::default());
    let t = TcpTransport::new(meter.clone(), quick_config(), 2).unwrap();
    let pages: Vec<SealedPage> = (0..8).map(page).collect();
    for p in &pages {
        t.send(MASTER, 1, p).unwrap();
    }
    let got = t.collect(1).unwrap();
    assert_eq!(got.len(), pages.len());
    for (g, want) in got.iter().zip(&pages) {
        assert_eq!(g.to_bytes(), want.to_bytes(), "torn or misordered page");
    }
    assert_eq!(meter.pages_shuffled(), 8);
    assert_eq!(meter.bytes_retransmitted(), 0);
}

#[test]
fn heartbeat_liveness_detects_death_before_the_deadline() {
    let meter = Arc::new(TransportMeter::default());
    let t = TcpTransport::new(meter.clone(), quick_config(), 2).unwrap();
    // A send whose only wire copy is mangled: the checksum rejects it, so
    // the destination waits on a page that will never arrive — exactly the
    // situation a silent worker death creates.
    t.send_corrupted(MASTER, 1, &page(1), 0xF11, false).unwrap();
    t.kill(0);
    let start = Instant::now();
    let err = t.collect(1).unwrap_err();
    let waited = start.elapsed();
    assert_eq!(err, PcError::WorkerDead(0), "the suspect is named");
    assert!(
        waited < Duration::from_secs(2),
        "missed heartbeats must preempt the {:?} collect deadline (took {waited:?})",
        quick_config().collect_deadline
    );
    assert!(
        meter.heartbeats_missed() >= 3,
        "each missed beat is metered (got {})",
        meter.heartbeats_missed()
    );
}

#[test]
fn crash_restart_reconnects_with_backoff_and_meters_it() {
    let meter = Arc::new(TransportMeter::default());
    let t = TcpTransport::new(meter.clone(), quick_config(), 2).unwrap();
    t.send(MASTER, 0, &page(1)).unwrap();
    assert_eq!(t.collect(0).unwrap().len(), 1);
    // Crash: connections sever, heartbeats stop, the monitor suspects.
    t.kill(0);
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(t.suspects(), vec![0], "silence must raise suspicion");
    // Restart: recovery's reset + revive. The heartbeat endpoint re-dials
    // (metered), suspicion clears, and the link carries pages again.
    t.reset();
    t.revive(0);
    t.send(MASTER, 0, &page(2)).unwrap();
    assert_eq!(t.collect(0).unwrap().len(), 1);
    // The heartbeat endpoint re-dials on its own schedule: wait for the
    // metered reconnect rather than racing it.
    let deadline = Instant::now() + Duration::from_secs(3);
    while meter.reconnects() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(t.suspects().is_empty(), "restart must clear suspicion");
    assert!(
        meter.reconnects() >= 1,
        "the re-dialed heartbeat link is metered"
    );
}

#[test]
fn corruption_on_the_socket_is_retransmitted_clean() {
    let meter = Arc::new(TransportMeter::default());
    let t = TcpTransport::new(meter.clone(), quick_config(), 2).unwrap();
    let p = page(7);
    // One frame's payload is bit-flipped on the wire; the clean copy
    // follows. The receiver must reject the mangled frame by checksum and
    // deliver the page intact.
    t.send_corrupted(MASTER, 1, &p, 0xBEEF, true).unwrap();
    let got = t.collect(1).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(
        got[0].to_bytes(),
        p.to_bytes(),
        "delivered page must be the clean copy"
    );
    assert!(
        meter.bytes_retransmitted() > 0,
        "the checksum-rejected frame is metered as waste"
    );
    assert_eq!(meter.pages_shuffled(), 1, "still exactly one logical page");
}

#[test]
fn tcp_cluster_matches_local_byte_for_byte() {
    fn run(transport: TransportKind) -> Vec<Vec<u8>> {
        let c = PcCluster::new(ClusterConfig {
            workers: 3,
            exec: ExecConfig {
                batch_size: 32,
                page_size: 1 << 15,
                agg_partitions: 5,
                join_partitions: 8,
                morsel_rows: 64,
                ..ExecConfig::default()
            },
            transport,
            ..ClusterConfig::default()
        })
        .unwrap();
        c.create_or_clear_set("db", "emps").unwrap();
        let mut w = SetWriter::new(1 << 14);
        for i in 0..300 {
            w.write_with(|| {
                let e = make_object::<Emp>()?;
                e.v().set_salary(30_000 + (i as i64 * 977) % 90_000)?;
                e.v().set_dept_id((i % 7) as i64)?;
                e.v().set_name(PcString::make(&format!("emp{i}"))?)?;
                Ok(e.erase())
            })
            .unwrap();
        }
        c.send_pages("db", "emps", w.finish().unwrap()).unwrap();
        c.create_or_clear_set("db", "rich").unwrap();
        let rich = Dataset::<Emp>::scan("db", "emps")
            .filter(|e| e.member("salary", |e| e.v().salary()).gt_const(70_000i64));
        let q = Job::new()
            .add(rich.write_to("db", "rich"))
            .compile()
            .unwrap();
        let stats = c.execute(&q).unwrap();
        assert_eq!(stats.stages_replayed, 0, "a healthy wire replays nothing");
        set_bytes_sorted(&c, "db", "rich").unwrap()
    }
    let baseline = run(TransportKind::Local);
    let over_tcp = run(TransportKind::Tcp(TcpConfig {
        chunk_bytes: 1 << 10,
        ..TcpConfig::default()
    }));
    assert_eq!(baseline, over_tcp, "sockets must not change a single byte");
}
