//! Wire-codec robustness: arbitrary frames round-trip exactly, and every
//! kind of wire damage — truncation, bit flips, short reads, garbage —
//! surfaces as a typed outcome (`Need`, `Corrupt`, or `PcError::Transport`),
//! never as a decoded garbage frame and never as a panic.

use pc_cluster::wire::{self, Decoded, FrameKind, WireFrame};
use pc_object::PcError;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn frame_strategy() -> impl Strategy<Value = WireFrame> {
    (
        0..3u64,                   // epoch
        0..8u64,                   // src
        0..8u64,                   // dst
        0..1_000u64,               // seq
        (0..16u32, 1..17u32),      // idx < total
        pvec(any::<u8>(), 0..512), // payload
    )
        .prop_map(|(epoch, src, dst, seq, (idx, total), payload)| {
            WireFrame::data(epoch, src, dst, seq, idx % total, total, payload)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_exact(frame in frame_strategy()) {
        let encoded = frame.encode();
        match wire::decode(&encoded) {
            Ok(Decoded::Frame { frame: got, consumed }) => {
                prop_assert_eq!(consumed, encoded.len());
                prop_assert_eq!(got.kind, FrameKind::Data);
                prop_assert_eq!(got.epoch, frame.epoch);
                prop_assert_eq!(got.src, frame.src);
                prop_assert_eq!(got.dst, frame.dst);
                prop_assert_eq!(got.seq, frame.seq);
                prop_assert_eq!(got.idx, frame.idx);
                prop_assert_eq!(got.total, frame.total);
                prop_assert_eq!(got.payload, frame.payload);
            }
            other => prop_assert!(false, "clean frame failed to decode: {:?}", other),
        }
    }

    #[test]
    fn every_truncation_is_need_never_garbage(frame in frame_strategy()) {
        // A short read at *any* cut point must ask for more bytes; the
        // decoder must never mistake a prefix for a complete frame.
        let encoded = frame.encode();
        for cut in 0..encoded.len() {
            match wire::decode(&encoded[..cut]) {
                Ok(Decoded::Need) => {}
                other => prop_assert!(
                    false,
                    "truncation at {} of {} decoded to {:?}",
                    cut, encoded.len(), other
                ),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected(
        frame in frame_strategy(),
        bit in any::<usize>(),
    ) {
        // Flip one bit anywhere in the encoded frame. Three outcomes are
        // legitimate: the checksum catches it (Corrupt), the framing itself
        // becomes untrustworthy (typed Err), or a header flip inflates the
        // length so the buffer looks incomplete (Need). What must never
        // happen: a successfully decoded frame, or a panic.
        let mut encoded = frame.encode();
        let n_bits = encoded.len() * 8;
        let b = bit % n_bits;
        encoded[b / 8] ^= 1 << (b % 8);
        match wire::decode(&encoded) {
            Ok(Decoded::Corrupt { consumed, .. }) => {
                prop_assert!(consumed > 0, "corrupt frames must consume bytes");
            }
            Ok(Decoded::Need) | Err(PcError::Transport(_)) => {}
            other => prop_assert!(
                false,
                "bit flip at {} decoded cleanly: {:?}",
                b, other
            ),
        }
    }

    #[test]
    fn random_garbage_never_panics(junk in pvec(any::<u8>(), 0..256)) {
        // Arbitrary bytes must produce a typed outcome, never a panic.
        let _ = wire::decode(&junk);
    }
}

#[test]
fn corrupt_skip_resynchronizes_on_the_next_frame() {
    // The length-prefixed framing localizes a payload flip to one frame:
    // after skipping the corrupt frame, the next one decodes cleanly.
    let a = WireFrame::data(0, 1, 2, 7, 0, 2, vec![0xAA; 64]).encode();
    let b = WireFrame::data(0, 1, 2, 7, 1, 2, vec![0xBB; 64]).encode();
    let mut buf = a.clone();
    wire::flip_payload_bit(&mut buf, 42);
    buf.extend_from_slice(&b);
    let Ok(Decoded::Corrupt { consumed, .. }) = wire::decode(&buf) else {
        panic!("mangled first frame must be Corrupt");
    };
    assert_eq!(consumed, a.len(), "skip lands exactly on the next frame");
    match wire::decode(&buf[consumed..]) {
        Ok(Decoded::Frame { frame, consumed }) => {
            assert_eq!(consumed, b.len());
            assert_eq!(frame.idx, 1);
            assert_eq!(frame.payload, vec![0xBB; 64]);
        }
        other => panic!("clean second frame must decode: {other:?}"),
    }
}

#[test]
fn heartbeat_frames_roundtrip() {
    let hb = WireFrame::heartbeat(3, u64::MAX, 99).encode();
    match wire::decode(&hb) {
        Ok(Decoded::Frame { frame, consumed }) => {
            assert_eq!(consumed, hb.len());
            assert_eq!(frame.kind, FrameKind::Heartbeat);
            assert_eq!(frame.src, 3);
            assert_eq!(frame.dst, u64::MAX);
            assert_eq!(frame.seq, 99, "the beat counter rides in seq");
        }
        other => panic!("heartbeat must decode: {other:?}"),
    }
}
