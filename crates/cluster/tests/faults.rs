//! Chaos suite: seeded fault injection over the distributed stages.
//!
//! The matrix runs every fault kind ({drop, delay, reorder, corrupt,
//! worker-death})
//! against both transport-heavy stage shapes (the JoinBuild broadcast and
//! the aggregation shuffle) across several seeds, and asserts the job
//! completes with output **byte-identical** to a fault-free run. Every
//! assertion label embeds the seed and the transport's own
//! `fault_summary()`, so a failing cell prints its schedule for a one-line
//! reproduction.

use pc_cluster::testkit::{assert_runs_identical, set_bytes_sorted};
use pc_cluster::{
    ClusterConfig, ClusterStats, FaultKind, FaultSpec, PcCluster, StreamConfig, TransportKind,
};
use pc_core::{Dataset, Job};
use pc_exec::ExecConfig;
use pc_lambda::{AggregateSpec, SetWriter};
use pc_object::{make_object, pc_object, BlockRef, Handle, PcResult, PcString, PcVec};

pc_object! {
    pub struct Emp / EmpView {
        (salary, set_salary): i64,
        (dept_id, set_dept_id): i64,
        (name, set_name): Handle<PcString>,
    }
}

pc_object! {
    pub struct Dept / DeptView {
        (id, set_id): i64,
        (dname, set_dname): Handle<PcString>,
    }
}

pc_object! {
    pub struct DeptStat / DeptStatView {
        (dept, set_dept): i64,
        (count, set_count): i64,
        (total, set_total): i64,
    }
}

const WORKERS: usize = 3;

fn cluster_with(transport: TransportKind) -> PcCluster {
    PcCluster::new(ClusterConfig {
        workers: WORKERS,
        exec: ExecConfig {
            batch_size: 32,
            page_size: 1 << 15,
            agg_partitions: 5,
            join_partitions: 8,
            morsel_rows: 64,
            ..ExecConfig::default()
        },
        broadcast_threshold: 1 << 20,
        transport,
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// Fault injection over the streaming transport: the realistic stack —
/// chunked frames on the wire underneath, chaos on top.
fn faulty(spec: FaultSpec) -> TransportKind {
    TransportKind::Faulty {
        inner: Box::new(TransportKind::Stream(StreamConfig {
            chunk_bytes: 1 << 10, // several frames per page
            ..StreamConfig::default()
        })),
        spec,
    }
}

fn load_emps(c: &PcCluster, n: usize) {
    c.create_or_clear_set("db", "emps").unwrap();
    let mut w = SetWriter::new(1 << 14);
    for i in 0..n {
        w.write_with(|| {
            let e = make_object::<Emp>()?;
            e.v().set_salary(30_000 + (i as i64 * 977) % 90_000)?;
            e.v().set_dept_id((i % 7) as i64)?;
            e.v().set_name(PcString::make(&format!("emp{i}"))?)?;
            Ok(e.erase())
        })
        .unwrap();
    }
    c.send_pages("db", "emps", w.finish().unwrap()).unwrap();
}

fn load_depts(c: &PcCluster) {
    c.create_or_clear_set("db", "depts").unwrap();
    let mut w = SetWriter::new(1 << 14);
    for d in 0..7i64 {
        w.write_with(|| {
            let dept = make_object::<Dept>()?;
            dept.v().set_id(d)?;
            dept.v().set_dname(PcString::make(&format!("dept{d}"))?)?;
            Ok(dept.erase())
        })
        .unwrap();
    }
    c.send_pages("db", "depts", w.finish().unwrap()).unwrap();
}

struct SumAgg;

impl AggregateSpec for SumAgg {
    type In = Emp;
    type Key = i64;
    type Val = (i64, i64);
    type Out = DeptStat;

    fn key_of(&self, rec: &Handle<Emp>) -> PcResult<i64> {
        Ok(rec.v().dept_id())
    }

    fn init(&self, _b: &BlockRef, rec: &Handle<Emp>) -> PcResult<(i64, i64)> {
        Ok((1, rec.v().salary()))
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Emp>) -> PcResult<()> {
        let (c, t): (i64, i64) = b.read(slot);
        b.write(slot, (c + 1, t + rec.v().salary()));
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let (c1, t1): (i64, i64) = dst.read(dst_slot);
        let (c2, t2): (i64, i64) = src.read(src_slot);
        dst.write(dst_slot, (c1 + c2, t1 + t2));
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<DeptStat>> {
        let (c, t): (i64, i64) = b.read(slot);
        let out = make_object::<DeptStat>()?;
        out.v().set_dept(*key)?;
        out.v().set_count(c)?;
        out.v().set_total(t)?;
        Ok(out)
    }
}

/// The aggregation-shuffle job: faults land on the combined-page shuffle
/// to partition owners (Appendix D.2).
fn run_agg(c: &PcCluster) -> (Vec<Vec<u8>>, ClusterStats) {
    load_emps(c, 600);
    c.create_or_clear_set("db", "stats").unwrap();
    let stats_ds = Dataset::<Emp>::scan("db", "emps").aggregate(SumAgg);
    let q = Job::new()
        .add(stats_ds.write_to("db", "stats"))
        .compile()
        .unwrap();
    let stats = c.execute(&q).unwrap();
    (set_bytes_sorted(c, "db", "stats").unwrap(), stats)
}

/// The broadcast-join job: faults land on the JoinBuild gather and the
/// build-table broadcast (§8.3.2).
fn run_join(c: &PcCluster) -> (Vec<Vec<u8>>, ClusterStats) {
    load_emps(c, 400);
    load_depts(c);
    c.create_or_clear_set("db", "pairs").unwrap();
    let joined = Dataset::<Dept>::scan("db", "depts").join(
        &Dataset::<Emp>::scan("db", "emps"),
        |d, e| {
            d.member("id", |d| d.v().id())
                .eq(e.member("deptId", |e| e.v().dept_id()))
        },
        "pair",
        |d, e| {
            let v = make_object::<PcVec<i64>>()?;
            v.push(d.v().id())?;
            v.push(e.v().dept_id())?;
            v.push(e.v().salary())?;
            Ok(v)
        },
    );
    let q = Job::new()
        .add(joined.write_to("db", "pairs"))
        .compile()
        .unwrap();
    let stats = c.execute(&q).unwrap();
    (set_bytes_sorted(c, "db", "pairs").unwrap(), stats)
}

type Scenario = (&'static str, fn(&PcCluster) -> (Vec<Vec<u8>>, ClusterStats));

const SCENARIOS: [Scenario; 2] = [("agg-shuffle", run_agg), ("join-broadcast", run_join)];

/// Pin worker-death schedules so every seed actually kills someone early in
/// the job (the derived default may land past the job's last send).
fn spec_for(kind: FaultKind, seed: u64) -> FaultSpec {
    let mut spec = FaultSpec::seeded(seed, &[kind]);
    if kind == FaultKind::WorkerDeath {
        spec.death_at = Some(seed % 6);
        spec.victim = Some(seed as usize % WORKERS);
    }
    spec
}

#[test]
fn chaos_matrix_completes_byte_identical() {
    let kinds = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Reorder,
        FaultKind::Corrupt,
        FaultKind::WorkerDeath,
    ];
    for (name, job) in SCENARIOS {
        let (baseline, _) = job(&cluster_with(TransportKind::Local));
        for kind in kinds {
            for seed in [1u64, 2, 3] {
                let c = cluster_with(faulty(spec_for(kind, seed)));
                let schedule = c.transport().fault_summary().unwrap_or_default();
                let label = format!("{name} seed={seed} [{schedule}]");
                let (got, stats) = job(&c);
                assert_runs_identical(&label, &baseline, &got);
                if kind == FaultKind::WorkerDeath {
                    assert!(
                        stats.workers_recovered >= 1,
                        "[{label}] the victim's backend must be restarted"
                    );
                    assert!(
                        stats.stages_replayed >= 1,
                        "[{label}] the interrupted stage must be replayed"
                    );
                }
            }
        }
    }
}

#[test]
fn combined_chaos_still_converges() {
    // Every fault kind at once — a dead worker mid-shuffle *while* the
    // surviving links drop, delay, reorder, and corrupt frames. Recovery
    // plus the delivery contract must still yield the fault-free bytes.
    let all = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Reorder,
        FaultKind::Corrupt,
        FaultKind::WorkerDeath,
    ];
    for (name, job) in SCENARIOS {
        let (baseline, _) = job(&cluster_with(TransportKind::Local));
        for seed in [11u64, 29] {
            let mut spec = FaultSpec::seeded(seed, &all);
            spec.death_at = Some(seed % 5);
            spec.victim = Some(seed as usize % WORKERS);
            let c = cluster_with(faulty(spec));
            let schedule = c.transport().fault_summary().unwrap_or_default();
            let label = format!("{name} combined seed={seed} [{schedule}]");
            let (got, stats) = job(&c);
            assert_runs_identical(&label, &baseline, &got);
            assert!(stats.workers_recovered >= 1, "[{label}] death must fire");
        }
    }
}

#[test]
fn retries_do_not_inflate_shuffle_accounting() {
    // Satellite regression: a lossy run reports the same *logical* shuffle
    // traffic as a clean one; the waste shows up only in the retransmission
    // counters.
    let (clean_bytes, clean) = run_agg(&cluster_with(TransportKind::Local));
    let mut spec = FaultSpec::seeded(0xACC, &[FaultKind::Drop]);
    spec.rate = 256; // every armed send loses at least one attempt
    let c = cluster_with(faulty(spec));
    let (lossy_bytes, lossy) = run_agg(&c);
    assert_runs_identical("drop-every-send accounting run", &clean_bytes, &lossy_bytes);
    assert_eq!(
        lossy.bytes_shuffled, clean.bytes_shuffled,
        "retransmits must not inflate logical shuffle bytes"
    );
    assert_eq!(
        lossy.pages_shuffled, clean.pages_shuffled,
        "retransmits must not inflate logical page counts"
    );
    assert!(lossy.bytes_retransmitted > 0, "drops were injected");
    assert!(lossy.sends_failed > 0);
    assert_eq!(clean.bytes_retransmitted, 0, "clean runs waste nothing");
}

#[test]
fn worker_death_keeps_logical_accounting_clean() {
    // The aborted attempt's deliveries are rolled back into retransmission,
    // so even a run that lost a worker mid-shuffle reports clean logical
    // shuffle traffic.
    let (clean_bytes, clean) = run_agg(&cluster_with(TransportKind::Local));
    let mut spec = FaultSpec::seeded(9, &[FaultKind::WorkerDeath]);
    spec.death_at = Some(3);
    spec.victim = Some(1);
    let c = cluster_with(faulty(spec));
    let (lossy_bytes, lossy) = run_agg(&c);
    assert_runs_identical(
        "death-mid-shuffle accounting run",
        &clean_bytes,
        &lossy_bytes,
    );
    assert_eq!(lossy.bytes_shuffled, clean.bytes_shuffled);
    assert_eq!(lossy.pages_shuffled, clean.pages_shuffled);
    assert!(lossy.stages_replayed >= 1);
    assert_eq!(lossy.workers_recovered, 1);
}

#[test]
fn drop_without_retries_recovers_by_stage_replay() {
    // With in-place retries disabled a wire loss surfaces as a transport
    // error; the master recovers by replaying the whole stage instead.
    let (baseline, _) = run_agg(&cluster_with(TransportKind::Local));
    let mut spec = FaultSpec::seeded(5, &[FaultKind::Drop]);
    spec.retries = false;
    spec.rate = 256;
    spec.max_faults = 1; // exactly one surfaced loss → deterministic replay
    let c = cluster_with(faulty(spec));
    let (got, stats) = run_agg(&c);
    assert_runs_identical("single surfaced drop", &baseline, &got);
    assert!(stats.stages_replayed >= 1, "stage replay must recover");
    assert_eq!(
        stats.workers_recovered, 0,
        "no worker died; only links were revived"
    );
}

#[test]
fn corrupted_frames_never_reach_output() {
    let (baseline, clean) = run_agg(&cluster_with(TransportKind::Local));
    // Retransmit path: every armed send has one frame's payload bit-flipped
    // on the wire. The receiver's checksum rejects each mangled frame, the
    // link's clean copy delivers, and only the waste counters notice.
    let mut spec = FaultSpec::seeded(0xBADC, &[FaultKind::Corrupt]);
    spec.rate = 256;
    let c = cluster_with(faulty(spec));
    let (got, stats) = run_agg(&c);
    assert_runs_identical("corrupt-every-send retransmit run", &baseline, &got);
    assert_eq!(
        stats.bytes_shuffled, clean.bytes_shuffled,
        "checksum-rejected frames must not inflate logical shuffle bytes"
    );
    assert!(
        stats.bytes_retransmitted > 0,
        "the mangled frames are metered as waste"
    );
    // Surfaced path: no retransmission — the corruption becomes a typed
    // transport error at the sender and stage replay recovers.
    let mut spec = FaultSpec::seeded(7, &[FaultKind::Corrupt]);
    spec.retries = false;
    spec.rate = 256;
    spec.max_faults = 1;
    let c = cluster_with(faulty(spec));
    let (got, stats) = run_agg(&c);
    assert_runs_identical("single surfaced corruption", &baseline, &got);
    assert!(stats.stages_replayed >= 1, "stage replay must recover");
    assert_eq!(stats.workers_recovered, 0, "no worker died");
}

#[test]
fn stream_transport_alone_matches_local_byte_for_byte() {
    // The streaming transport under no faults is just a slower wire: both
    // stage shapes must produce the fault-free bytes.
    for (name, job) in SCENARIOS {
        let (baseline, _) = job(&cluster_with(TransportKind::Local));
        let (got, stats) = job(&cluster_with(TransportKind::Stream(StreamConfig {
            chunk_bytes: 1 << 10,
            ..StreamConfig::default()
        })));
        assert_runs_identical(&format!("{name} over stream transport"), &baseline, &got);
        assert_eq!(stats.stages_replayed, 0);
        assert_eq!(stats.bytes_retransmitted, 0);
    }
}
