//! Property tests for the morsel scheduler's determinism contract: a
//! parallel run over per-thread deques with work stealing produces output
//! pages **byte-identical** to the single-threaded run, for arbitrary
//! morsel sizes, thread counts, page-size skew, and data seeds. The
//! decomposition into morsels is a pure function of the input pages and
//! `morsel_rows`, each morsel seals its output in the thread that ran it,
//! and the merge orders strictly by morsel index — so which thread (or how
//! many) executed a morsel can never show up in the bytes.

use pc_cluster::testkit::{assert_runs_identical, set_bytes_sorted};
use pc_cluster::{ClusterConfig, PcCluster};
use pc_core::{Dataset, Job, Var};
use pc_exec::ExecConfig;
use pc_lambda::{AggregateSpec, SetWriter};
use pc_object::{make_object, pc_object, BlockRef, Handle, PcResult, PcVec};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

pc_object! {
    pub struct Rec / RecView {
        (key, set_key): i64,
        (val, set_val): i64,
    }
}

fn cluster(threads: usize, morsel_rows: usize) -> PcCluster {
    PcCluster::new(ClusterConfig {
        workers: 2,
        exec: ExecConfig {
            batch_size: 32,
            page_size: 1 << 15,
            agg_partitions: 3,
            join_partitions: 4,
            morsel_rows,
            threads,
            ..ExecConfig::default()
        },
        broadcast_threshold: 1 << 20,
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// Loads `n` seeded records through skewed page sizes: each `layout` chunk
/// writes its rows through its own small `SetWriter` page size, so page
/// boundaries — and therefore morsel boundaries — differ per case.
fn load(c: &PcCluster, n: usize, layout: &[(usize, u8)], seed: u64) {
    c.create_or_clear_set("db", "recs").unwrap();
    let mut i = 0usize;
    let mut chunk = 0usize;
    while i < n {
        let (rows, shift) = layout[chunk % layout.len()];
        chunk += 1;
        let rows = rows.min(n - i).max(1);
        let mut w = SetWriter::new(1 << (11 + (shift % 4) as usize));
        for _ in 0..rows {
            let k = i as u64;
            w.write_with(|| {
                let r = make_object::<Rec>()?;
                r.v()
                    .set_key(((seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 97) as i64)?;
                r.v().set_val((k as i64 * 31) % 1009)?;
                Ok(r.erase())
            })
            .unwrap();
            i += 1;
        }
        c.send_pages("db", "recs", w.finish().unwrap()).unwrap();
    }
    // The probe side for the join: one row per possible key.
    c.create_or_clear_set("db", "dim").unwrap();
    let mut w = SetWriter::new(1 << 13);
    for d in 0..97i64 {
        w.write_with(|| {
            let r = make_object::<Rec>()?;
            r.v().set_key(d)?;
            r.v().set_val(d * 1000)?;
            Ok(r.erase())
        })
        .unwrap();
    }
    c.send_pages("db", "dim", w.finish().unwrap()).unwrap();
}

fn key_of(r: Var<Rec>) -> pc_lambda::Lambda<i64> {
    r.member("key", |r| r.v().key())
}

/// Runs the flatmap and join-build lanes at the given parallelism and
/// returns their output pages in canonical (sorted-bytes) form.
fn run_case(
    threads: usize,
    morsel_rows: usize,
    n: usize,
    layout: &[(usize, u8)],
    seed: u64,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let c = cluster(threads, morsel_rows);
    load(&c, n, layout, seed);
    c.create_or_clear_set("db", "fm_out").unwrap();
    c.create_or_clear_set("db", "join_out").unwrap();

    // FLATMAP lane: data-dependent fan-out (1..=3 per row).
    let fanned = Dataset::<Rec>::scan("db", "recs").flat_map("explode", |r| {
        let mut out = Vec::new();
        for b in 0..(r.v().key() % 3) + 1 {
            let x = make_object::<Rec>()?;
            x.v().set_key(r.v().key())?;
            x.v().set_val(r.v().val() + b)?;
            out.push(x);
        }
        Ok(out)
    });

    // Join-build lane: the big seeded set is the LEFT dataset, so it feeds
    // the parallel build sink; `dim` streams and probes.
    let joined = Dataset::<Rec>::scan("db", "recs").join(
        &Dataset::<Rec>::scan("db", "dim"),
        |a, b| key_of(a).eq(key_of(b)),
        "mkPair",
        |a, b| {
            let v = make_object::<PcVec<i64>>()?;
            v.push(a.v().key())?;
            v.push(a.v().val() + b.v().val())?;
            Ok(v)
        },
    );

    let q = Job::new()
        .add(fanned.write_to("db", "fm_out"))
        .add(joined.write_to("db", "join_out"))
        .compile()
        .unwrap();
    c.execute(&q).unwrap();
    (
        set_bytes_sorted(&c, "db", "fm_out").unwrap(),
        set_bytes_sorted(&c, "db", "join_out").unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_runs_are_byte_identical_to_single_threaded(
        threads in 2usize..6,
        morsel_rows in 16usize..512,
        layout in pvec((8usize..120, 0u8..4), 1..6),
        seed in 0..u64::MAX,
    ) {
        let n = 700;
        let label = format!(
            "threads={threads} morsel_rows={morsel_rows} layout={layout:?} seed={seed}"
        );
        let (fm_base, join_base) = run_case(1, morsel_rows, n, &layout, seed);
        let (fm_par, join_par) = run_case(threads, morsel_rows, n, &layout, seed);
        assert_runs_identical(&format!("flatmap lane, {label}"), &fm_base, &fm_par);
        assert_runs_identical(&format!("join-build lane, {label}"), &join_base, &join_par);
    }
}

struct SumAgg;

impl AggregateSpec for SumAgg {
    type In = Rec;
    type Key = i64;
    type Val = i64;
    type Out = Rec;

    fn key_of(&self, rec: &Handle<Rec>) -> PcResult<i64> {
        Ok(rec.v().key())
    }
    fn init(&self, _b: &BlockRef, rec: &Handle<Rec>) -> PcResult<i64> {
        Ok(rec.v().val())
    }
    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Rec>) -> PcResult<()> {
        let t: i64 = b.read(slot);
        b.write(slot, t + rec.v().val());
        Ok(())
    }
    fn merge(&self, dst: &BlockRef, ds: u32, src: &BlockRef, ss: u32) -> PcResult<()> {
        let t1: i64 = dst.read(ds);
        let t2: i64 = src.read(ss);
        dst.write(ds, t1 + t2);
        Ok(())
    }
    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<Rec>> {
        let t: i64 = b.read(slot);
        let out = make_object::<Rec>()?;
        out.v().set_key(*key)?;
        out.v().set_val(t)?;
        Ok(out)
    }
}

/// The non-property companion: distributed two-phase aggregation stays
/// byte-identical as `ExecConfig::threads` sweeps 1 → 2 → 4 (the same
/// sweep CI drives externally via `PC_THREADS`).
#[test]
fn distributed_aggregation_is_byte_identical_across_thread_counts() {
    let layout = [(40usize, 0u8), (90, 2), (17, 3)];
    let run = |threads: usize| -> Vec<Vec<u8>> {
        let c = cluster(threads, 48);
        load(&c, 900, &layout, 0xC0FFEE);
        c.create_or_clear_set("db", "sums").unwrap();
        let q = Job::new()
            .add(
                Dataset::<Rec>::scan("db", "recs")
                    .aggregate(SumAgg)
                    .write_to("db", "sums"),
            )
            .compile()
            .unwrap();
        c.execute(&q).unwrap();
        set_bytes_sorted(&c, "db", "sums").unwrap()
    };
    let base = run(1);
    for threads in [2, 4] {
        assert_runs_identical(
            &format!("aggregation at {threads} threads"),
            &base,
            &run(threads),
        );
    }
}
