//! Out-of-core correctness properties: a join → aggregation forced to
//! spill by a pool budget far smaller than its input produces output
//! **byte-identical** to the unbudgeted in-memory run — across data seeds,
//! partition counts, thread counts, and seeded memory-pressure injection —
//! and an abort partway through a spilling stage leaks no spill files.

use pc_cluster::testkit::{assert_runs_identical, set_bytes_sorted};
use pc_cluster::{ClusterConfig, ClusterStats, PcCluster};
use pc_core::{Dataset, Job, Var};
use pc_exec::ExecConfig;
use pc_lambda::{AggregateSpec, SetWriter};
use pc_object::{make_object, pc_object, BlockRef, Handle, PcError, PcResult, PressureSpec};
use proptest::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};

pc_object! {
    pub struct Rec / RecView {
        (key, set_key): i64,
        (val, set_val): i64,
    }
}

fn cluster(
    threads: usize,
    pool_capacity: usize,
    pressure: Option<PressureSpec>,
    join_partitions: usize,
    agg_partitions: usize,
) -> PcCluster {
    PcCluster::new(ClusterConfig {
        workers: 2,
        exec: ExecConfig {
            batch_size: 64,
            page_size: 1 << 13,
            agg_partitions,
            join_partitions,
            threads,
            ..ExecConfig::default()
        },
        broadcast_threshold: 1 << 20,
        pool_capacity,
        pressure,
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn load(c: &PcCluster, n: usize, keys: i64, seed: u64) {
    c.create_or_clear_set("db", "big").unwrap();
    let mut w = SetWriter::new(1 << 12);
    for i in 0..n {
        let k = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % keys as u64;
        w.write_with(|| {
            let r = make_object::<Rec>()?;
            r.v().set_key(k as i64)?;
            r.v().set_val(i as i64)?;
            Ok(r.erase())
        })
        .unwrap();
    }
    c.send_pages("db", "big", w.finish().unwrap()).unwrap();

    c.create_or_clear_set("db", "dim").unwrap();
    let mut w = SetWriter::new(1 << 12);
    for d in 0..keys {
        w.write_with(|| {
            let r = make_object::<Rec>()?;
            r.v().set_key(d)?;
            r.v().set_val(d * 1000)?;
            Ok(r.erase())
        })
        .unwrap();
    }
    c.send_pages("db", "dim", w.finish().unwrap()).unwrap();
}

fn key_of(r: Var<Rec>) -> pc_lambda::Lambda<i64> {
    r.member("key", |r| r.v().key())
}

struct SumAgg;

impl AggregateSpec for SumAgg {
    type In = Rec;
    type Key = i64;
    type Val = i64;
    type Out = Rec;

    fn key_of(&self, rec: &Handle<Rec>) -> PcResult<i64> {
        Ok(rec.v().key())
    }
    fn init(&self, _b: &BlockRef, rec: &Handle<Rec>) -> PcResult<i64> {
        Ok(rec.v().val())
    }
    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Rec>) -> PcResult<()> {
        let t: i64 = b.read(slot);
        b.write(slot, t + rec.v().val());
        Ok(())
    }
    fn merge(&self, dst: &BlockRef, ds: u32, src: &BlockRef, ss: u32) -> PcResult<()> {
        let t1: i64 = dst.read(ds);
        let t2: i64 = src.read(ss);
        dst.write(ds, t1 + t2);
        Ok(())
    }
    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<Rec>> {
        let t: i64 = b.read(slot);
        let out = make_object::<Rec>()?;
        out.v().set_key(*key)?;
        out.v().set_val(t)?;
        Ok(out)
    }
}

/// Rows the join projection may emit before erroring out; negative means
/// "never poisoned". A global because the projection must be a plain `fn`-
/// style closure shared across worker threads.
static POISON_BUDGET: AtomicI64 = AtomicI64::new(-1);

/// Runs the join → aggregate query and returns the output set's canonical
/// bytes plus run stats.
fn run_query(c: &PcCluster) -> PcResult<(Vec<Vec<u8>>, ClusterStats)> {
    c.create_or_clear_set("db", "sums").unwrap();
    let joined = Dataset::<Rec>::scan("db", "big").join(
        &Dataset::<Rec>::scan("db", "dim"),
        |a, b| key_of(a).eq(key_of(b)),
        "oocPair",
        |a, b| {
            if POISON_BUDGET.load(Ordering::Relaxed) >= 0
                && POISON_BUDGET.fetch_sub(1, Ordering::Relaxed) <= 0
            {
                return Err(PcError::Catalog("injected mid-stage abort".into()));
            }
            let p = make_object::<Rec>()?;
            p.v().set_key(a.v().key())?;
            p.v().set_val(a.v().val() + b.v().val())?;
            Ok(p)
        },
    );
    let q = Job::new()
        .add(joined.aggregate(SumAgg).write_to("db", "sums"))
        .compile()
        .unwrap();
    let stats = c.execute(&q)?;
    Ok((set_bytes_sorted(c, "db", "sums")?, stats))
}

fn leaked_and_reserved(c: &PcCluster) -> (usize, usize) {
    let mut leaked = 0;
    let mut reserved = 0;
    for w in &c.workers {
        leaked += w.storage.pool().leaked_spill_files();
        reserved += w.storage.pool().budget().reserved();
    }
    (leaked, reserved)
}

/// Pool small enough that both the join build table and the aggregation
/// maps exceed it at the test's row counts.
const TINY_POOL: usize = 24 << 10;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: for arbitrary data seeds, partition counts,
    /// thread counts, and injected memory pressure, the spilling run is
    /// byte-identical to the in-memory run — and actually spilled.
    #[test]
    fn spilling_run_matches_in_memory_run(
        seed in 0..u64::MAX,
        join_partitions in 2usize..9,
        agg_partitions in 2usize..6,
        threads in prop_oneof![Just(1usize), Just(4usize)],
        pressure_seed in prop_oneof![Just(None), (0..u64::MAX).prop_map(Some)],
    ) {
        let (n, keys) = (1_200, 600i64);
        let label = format!(
            "seed={seed} jp={join_partitions} ap={agg_partitions} threads={threads} pressure={pressure_seed:?}"
        );

        let base_c = cluster(threads, 1 << 30, None, join_partitions, agg_partitions);
        load(&base_c, n, keys, seed);
        let (baseline, base_stats) = run_query(&base_c).unwrap();
        prop_assert_eq!(
            base_stats.exec.join_partitions_spilled + base_stats.exec.agg_pages_spilled,
            0,
            "in-memory run must not spill"
        );

        let pressure = pressure_seed.map(PressureSpec::seeded);
        let c = cluster(threads, TINY_POOL, pressure, join_partitions, agg_partitions);
        load(&c, n, keys, seed);
        let (got, stats) = run_query(&c).unwrap();
        assert_runs_identical(&label, &baseline, &got);
        prop_assert!(
            stats.exec.join_partitions_spilled + stats.exec.agg_pages_spilled > 0,
            "[{}] budgeted run never spilled", label
        );
        let (leaked, reserved) = leaked_and_reserved(&c);
        prop_assert_eq!(leaked, 0, "[{}] leaked spill files", &label);
        prop_assert_eq!(reserved, 0, "[{}] leaked budget reservation", &label);
    }
}

/// The spill-file lifecycle regression (satellite of the same PR that made
/// spilling possible): a stage that *aborts* after the build side has
/// already spilled must still clean up every spill file — the `SpillSet`'s
/// drop walks its namespace regardless of how the stage exits.
#[test]
fn mid_stage_abort_leaks_no_spill_files() {
    let (n, keys) = (1_200, 600i64);
    let c = cluster(1, TINY_POOL, None, 8, 4);
    load(&c, n, keys, 7);

    // Poison the probe-side projection: the join build (which spills at
    // this pool size) completes, then the probe stage dies mid-flight.
    POISON_BUDGET.store(50, Ordering::Relaxed);
    let err = run_query(&c);
    POISON_BUDGET.store(-1, Ordering::Relaxed);
    assert!(err.is_err(), "poisoned run must fail");

    // The failed run spilled (cumulative pool counters survive the error)…
    let spills: u64 = c
        .workers
        .iter()
        .map(|w| w.storage.pool().stats().spills)
        .sum();
    assert!(spills > 0, "abort test never exercised the spill path");
    // …and everything it spilled was reclaimed on abort.
    let (leaked, reserved) = leaked_and_reserved(&c);
    assert_eq!(leaked, 0, "mid-stage abort leaked spill files");
    assert_eq!(reserved, 0, "mid-stage abort leaked budget reservations");

    // The cluster is still usable: the same query, un-poisoned, completes
    // and spills again cleanly.
    let (bytes, stats) = run_query(&c).unwrap();
    assert!(!bytes.is_empty());
    assert!(stats.exec.join_partitions_spilled + stats.exec.agg_pages_spilled > 0);
    let (leaked, _) = leaked_and_reserved(&c);
    assert_eq!(leaked, 0);
}
