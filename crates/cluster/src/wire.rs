//! The wire format: length-prefixed, CRC-checksummed frames.
//!
//! Every byte a socket-backed transport puts on the wire is one of these
//! frames. The framing rules are what make corruption *recoverable*:
//!
//! * A frame starts with a fixed magic and carries its payload length up
//!   front, so a receiver always knows where the next frame boundary is —
//!   even when the current frame's payload is garbage.
//! * A CRC-32 trailer covers everything after the magic. A payload bit-flip
//!   fails the checksum and the receiver skips exactly that frame
//!   ([`Decoded::Corrupt`] says how many bytes to consume); framing stays
//!   intact and later frames still parse.
//! * Only a mangled *header region* (bad magic, absurd lengths) is
//!   unrecoverable: the receiver can no longer trust frame boundaries and
//!   must drop the connection ([`decode`] returns `Err`). The missing pages
//!   then surface as a typed [`PcError::Transport`] at collect time and
//!   stage replay recovers — corruption never panics and never delivers
//!   garbage pages.
//!
//! The same codec frames both the in-process [`StreamTransport`] channel
//! and the real-socket [`TcpTransport`], so the chaos matrix exercises one
//! corruption story on both wires.
//!
//! [`StreamTransport`]: crate::transport::StreamTransport
//! [`TcpTransport`]: crate::transport::TcpTransport

use pc_object::{PcError, PcResult};

/// Frame magic: `b"PCW1"` little-endian.
pub const MAGIC: u32 = 0x3157_4350;

/// Byte offset of the payload inside an encoded frame.
pub const HEADER_LEN: usize = 49;

/// CRC-32 trailer length.
pub const TRAILER_LEN: usize = 4;

/// Sanity cap on a single frame's payload (frames are page *chunks*; a
/// length beyond this is framing corruption, not a real frame).
pub const MAX_PAYLOAD: usize = 1 << 24;

/// Sanity cap on the chunk count of one page (a `total` beyond this is
/// framing corruption).
pub const MAX_CHUNKS: u32 = 1 << 20;

/// What kind of traffic a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// One chunk of a sealed page (`idx` of `total`).
    Data,
    /// A liveness beat from a worker to the master (`seq` is the beat
    /// counter).
    Heartbeat,
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Data chunk or heartbeat.
    pub kind: FrameKind,
    /// Delivery epoch: frames from aborted stage attempts are stale.
    pub epoch: u64,
    /// Sending node.
    pub src: u64,
    /// Destination node (inbox to deliver into).
    pub dst: u64,
    /// Page sequence number (data) or beat counter (heartbeat).
    pub seq: u64,
    /// Chunk index within the page.
    pub idx: u32,
    /// Total chunks in the page.
    pub total: u32,
    /// Chunk bytes (empty for heartbeats).
    pub payload: Vec<u8>,
}

impl WireFrame {
    /// A data frame carrying chunk `idx` of `total` of page `seq`.
    pub fn data(
        epoch: u64,
        src: u64,
        dst: u64,
        seq: u64,
        idx: u32,
        total: u32,
        payload: Vec<u8>,
    ) -> Self {
        WireFrame {
            kind: FrameKind::Data,
            epoch,
            src,
            dst,
            seq,
            idx,
            total,
            payload,
        }
    }

    /// Heartbeat number `beat` from worker `src` to `dst`.
    pub fn heartbeat(src: u64, dst: u64, beat: u64) -> Self {
        WireFrame {
            kind: FrameKind::Heartbeat,
            epoch: 0,
            src,
            dst,
            seq: beat,
            idx: 0,
            total: 0,
            payload: Vec::new(),
        }
    }

    /// Serializes the frame: magic, header, payload, CRC-32 trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + TRAILER_LEN);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(match self.kind {
            FrameKind::Data => 1,
            FrameKind::Heartbeat => 2,
        });
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.idx.to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        debug_assert_eq!(out.len(), HEADER_LEN + self.payload.len());
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// The outcome of trying to decode one frame from the head of a buffer.
#[derive(Debug)]
pub enum Decoded {
    /// Not enough bytes buffered yet; read more and retry.
    Need,
    /// One complete, checksum-verified frame; consume `consumed` bytes.
    Frame {
        /// The decoded frame.
        frame: WireFrame,
        /// Bytes the frame occupied on the wire.
        consumed: usize,
    },
    /// The frame's checksum (or a field sanity check) failed, but the
    /// framing itself is intact: skip `consumed` bytes and keep decoding.
    Corrupt {
        /// Bytes to skip to reach the next frame boundary.
        consumed: usize,
        /// What failed, for the typed error that surfaces at collect.
        why: String,
    },
}

/// Decodes the frame at the head of `buf`.
///
/// `Err` means the framing itself can no longer be trusted (bad magic or an
/// absurd length): the caller must drop the connection — the data lost with
/// it surfaces as a typed transport error, never as a garbage page.
pub fn decode(buf: &[u8]) -> PcResult<Decoded> {
    if buf.len() < HEADER_LEN {
        return Ok(Decoded::Need);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("sliced"));
    if magic != MAGIC {
        return Err(PcError::Transport(format!(
            "wire framing broken: bad magic {magic:#010x}"
        )));
    }
    let len = u32::from_le_bytes(buf[45..49].try_into().expect("sliced")) as usize;
    if len > MAX_PAYLOAD {
        return Err(PcError::Transport(format!(
            "wire framing broken: frame payload length {len} exceeds {MAX_PAYLOAD}"
        )));
    }
    let frame_len = HEADER_LEN + len + TRAILER_LEN;
    if buf.len() < frame_len {
        return Ok(Decoded::Need);
    }
    let want = u32::from_le_bytes(buf[HEADER_LEN + len..frame_len].try_into().expect("sliced"));
    let got = crc32(&buf[4..HEADER_LEN + len]);
    if want != got {
        return Ok(Decoded::Corrupt {
            consumed: frame_len,
            why: format!("frame checksum mismatch (stored {want:#010x}, computed {got:#010x})"),
        });
    }
    let kind = match buf[4] {
        1 => FrameKind::Data,
        2 => FrameKind::Heartbeat,
        other => {
            return Ok(Decoded::Corrupt {
                consumed: frame_len,
                why: format!("unknown frame kind {other}"),
            })
        }
    };
    let idx = u32::from_le_bytes(buf[37..41].try_into().expect("sliced"));
    let total = u32::from_le_bytes(buf[41..45].try_into().expect("sliced"));
    if kind == FrameKind::Data && (total == 0 || idx >= total || total > MAX_CHUNKS) {
        return Ok(Decoded::Corrupt {
            consumed: frame_len,
            why: format!("inconsistent chunk header (idx {idx} of {total})"),
        });
    }
    let frame = WireFrame {
        kind,
        epoch: u64::from_le_bytes(buf[5..13].try_into().expect("sliced")),
        src: u64::from_le_bytes(buf[13..21].try_into().expect("sliced")),
        dst: u64::from_le_bytes(buf[21..29].try_into().expect("sliced")),
        seq: u64::from_le_bytes(buf[29..37].try_into().expect("sliced")),
        idx,
        total,
        payload: buf[HEADER_LEN..HEADER_LEN + len].to_vec(),
    };
    Ok(Decoded::Frame {
        frame,
        consumed: frame_len,
    })
}

/// Flips one seed-chosen bit inside the payload region of an encoded frame
/// (falls back to the `seq` field for empty payloads, which is equally
/// checksum-covered and framing-safe). Returns the flipped (byte, bit) so
/// fault schedules can print it.
pub fn flip_payload_bit(encoded: &mut [u8], seed: u64) -> (usize, u8) {
    let payload_len = encoded.len().saturating_sub(HEADER_LEN + TRAILER_LEN);
    let (base, span) = if payload_len > 0 {
        (HEADER_LEN, payload_len)
    } else {
        (29, 8) // the seq field
    };
    let bit = splitmix(seed) % (span as u64 * 8);
    let byte = base + (bit / 8) as usize;
    let mask = 1u8 << (bit % 8);
    encoded[byte] ^= mask;
    (byte, bit as u8 % 8)
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------- crc32

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = WireFrame::data(3, 1, 2, 40, 5, 9, vec![7u8; 300]);
        let bytes = f.encode();
        match decode(&bytes).unwrap() {
            Decoded::Frame { frame, consumed } => {
                assert_eq!(frame, f);
                assert_eq!(consumed, bytes.len());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn short_buffer_asks_for_more() {
        let bytes = WireFrame::heartbeat(2, u64::MAX, 17).encode();
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]).unwrap() {
                Decoded::Need => {}
                other => panic!("truncated at {cut} must ask for more, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_bit_flip_is_detected_and_skippable() {
        let f = WireFrame::data(0, 0, 1, 0, 0, 1, (0..64).collect());
        let tail = WireFrame::heartbeat(1, u64::MAX, 1).encode();
        for seed in 0..32u64 {
            let mut bytes = f.encode();
            let n = bytes.len();
            flip_payload_bit(&mut bytes, seed);
            bytes.extend_from_slice(&tail);
            match decode(&bytes).unwrap() {
                Decoded::Corrupt { consumed, .. } => {
                    assert_eq!(consumed, n, "skip lands on the next frame boundary");
                    assert!(matches!(
                        decode(&bytes[consumed..]).unwrap(),
                        Decoded::Frame { .. }
                    ));
                }
                other => panic!("flipped payload must fail the checksum, got {other:?}"),
            }
        }
    }

    #[test]
    fn broken_framing_is_a_typed_error() {
        let mut bytes = WireFrame::data(0, 0, 1, 0, 0, 1, vec![1, 2, 3]).encode();
        bytes[0] ^= 0xFF; // magic
        assert!(matches!(decode(&bytes), Err(PcError::Transport(_))));
        let mut bytes = WireFrame::data(0, 0, 1, 0, 0, 1, vec![1, 2, 3]).encode();
        bytes[45..49].copy_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        assert!(matches!(decode(&bytes), Err(PcError::Transport(_))));
    }
}
