//! Master-side failure detection and replay-based recovery.
//!
//! The recovery protocol leans on two properties the rest of the system
//! already guarantees:
//!
//! 1. **Stages are deterministic** — the same inputs produce byte-identical
//!    outputs (asserted by `cluster/tests/distributed.rs` and reused by the
//!    chaos suite).
//! 2. **Inputs are append-only and survive a backend death** — the paper's
//!    front-end/backend split (§2): worker *storage* is the crash-proof
//!    front-end; what dies is the backend executor and anything it had in
//!    flight on the wire.
//!
//! So when the transport reports a dead worker (or a collect deadline
//! expires), the master: rolls the traffic meter back (the aborted
//! attempt's deliveries were waste, not logical shuffle bytes), resets the
//! transport (stale frames from the aborted attempt can never leak into
//! the replay), restarts the dead worker's backend under a bumped liveness
//! epoch, clears the stage's intermediate outputs, and re-runs the whole
//! stage from the surviving inputs. Determinism then makes the replayed
//! output byte-identical to a fault-free run.

use crate::cluster::PcCluster;
use crate::stages;
use pc_exec::{ExecStats, PipelineSpec};
use pc_lambda::{ErasedAgg, StageLibrary};
use pc_object::{PcError, PcResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How persistently the master replays failed stages.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Attempts per stage (first run + replays) before the job fails.
    pub max_stage_attempts: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_stage_attempts: 5,
        }
    }
}

/// Worker liveness as the master sees it: one epoch per worker, bumped
/// every time the worker's backend is restarted after a detected death. A
/// send observed under an old epoch belongs to an aborted attempt.
#[derive(Debug)]
pub struct Liveness {
    epochs: Vec<AtomicU64>,
}

impl Liveness {
    /// All workers start alive at epoch 0.
    pub fn new(workers: usize) -> Self {
        Liveness {
            epochs: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The current epoch of worker `w`.
    pub fn epoch(&self, w: usize) -> u64 {
        self.epochs[w].load(Ordering::Relaxed)
    }

    /// Restart worker `w`'s backend: bump its epoch, return the new one.
    pub fn restart(&self, w: usize) -> u64 {
        self.epochs[w].fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Errors the master can recover from by replaying the stage. Everything
/// else (compute errors, catalog errors) is deterministic and would simply
/// fail again.
pub fn is_recoverable(e: &PcError) -> bool {
    matches!(e, PcError::WorkerDead(_) | PcError::Transport(_))
}

/// Runs `attempt` under the stage-replay protocol: on a recoverable error,
/// roll back metering, reset the transport, recover the dead worker (or
/// revive all on an anonymous deadline), clear `replay_lists` (this stage's
/// append-only intermediate outputs under the tmp database), and retry.
pub(crate) fn with_stage_recovery<T>(
    cluster: &PcCluster,
    replay_lists: &[String],
    mut attempt: impl FnMut() -> PcResult<T>,
) -> PcResult<T> {
    let max = cluster.config.recovery.max_stage_attempts.max(1);
    let mut tries = 0;
    loop {
        let snap = cluster.meter().checkpoint();
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) if is_recoverable(&e) && tries + 1 < max => {
                tries += 1;
                cluster.meter().rollback(snap);
                cluster.transport().reset();
                match e {
                    PcError::WorkerDead(w) if w < cluster.workers.len() => {
                        cluster.recover_worker(w);
                    }
                    _ => {
                        // A deadline or wire error with no named victim: ask
                        // the transport's failure detector who it suspects
                        // (missed heartbeats) and restart those backends
                        // specifically; with nobody suspect, revive every
                        // link and replay — the schedule (or a real hang)
                        // will re-identify the culprit if there is one.
                        let suspects: Vec<usize> = cluster
                            .transport()
                            .suspects()
                            .into_iter()
                            .filter(|w| *w < cluster.workers.len())
                            .collect();
                        if suspects.is_empty() {
                            for w in 0..cluster.workers.len() {
                                cluster.transport().revive(w);
                            }
                        } else {
                            for w in suspects {
                                cluster.recover_worker(w);
                            }
                        }
                    }
                }
                cluster.note_stage_replayed();
                for list in replay_lists {
                    cluster.create_or_clear_set(pc_exec::TMP_DB, list)?;
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// One distributed stage, replayed until it completes (or the policy gives
/// up). The stage is the recovery unit: every routing action it performs
/// (gather, broadcast, shuffle) happens strictly *before* any durable
/// append, so an aborted attempt leaves nothing behind except cleared
/// intermediates and rolled-back meter counts.
pub fn run_stage_with_recovery(
    cluster: &PcCluster,
    p: &PipelineSpec,
    lib: &StageLibrary,
    aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    tables: &mut stages::TableStore,
) -> PcResult<ExecStats> {
    let replay_lists: Vec<String> = p.replay_targets().into_iter().map(str::to_string).collect();
    with_stage_recovery(cluster, &replay_lists, || {
        stages::run_stage_distributed(cluster, p, lib, aggs, tables)
    })
}
