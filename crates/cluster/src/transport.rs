//! The transport boundary: every byte that crosses between nodes goes
//! through a [`Transport`].
//!
//! The trait contract (relied on by the chaos suite and the transport
//! property tests):
//!
//! * **Exactly-once** — each page passed to [`Transport::send`] is handed
//!   out by [`Transport::collect`] exactly once, even when the wire drops
//!   or duplicates attempts underneath.
//! * **Order-restored** — `collect(dst)` returns pages in the order they
//!   were sent to `dst`, even when frames were chunked, interleaved, or
//!   reordered in flight. Deterministic stages + ordered delivery is what
//!   makes replay-based recovery byte-identical.
//! * **Metered** — logical traffic is counted once in the shared
//!   [`TransportMeter`]; wire-level waste (dropped attempts, aborted stage
//!   deliveries) is counted separately as retransmission, so a lossy run
//!   reports the same `bytes_shuffled` as a clean one.
//!
//! Three implementations:
//!
//! * [`LocalTransport`] — the synchronous in-process byte copy the cluster
//!   has always used (the default).
//! * [`StreamTransport`] — chunks sealed pages into frames and pushes them
//!   through a bounded channel to a demux thread that reassembles them
//!   concurrently, so delivery overlaps with downstream compute; the
//!   bounded channel is the flow control, and collects carry a deadline
//!   (the master-side failure detector).
//! * [`FaultyTransport`] — a decorator that injects drops, delays,
//!   reorders, and whole-worker deaths from a reproducible seed-driven
//!   schedule.

use crate::cluster::unique_suffix;
use pc_object::{PcError, PcResult, SealedPage};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A node address: worker index, or [`MASTER`].
pub type NodeId = usize;

/// The master node's address (gather point for broadcasts).
pub const MASTER: NodeId = usize::MAX;

fn node_name(n: NodeId) -> String {
    if n == MASTER {
        "master".to_string()
    } else {
        format!("worker {n}")
    }
}

// ---------------------------------------------------------------- metering

/// Cluster-wide traffic counters, shared by the cluster handle and every
/// transport layer. Logical traffic (`bytes_shuffled`/`pages_shuffled`)
/// counts each delivered page once; wire-level waste goes to
/// `bytes_retransmitted`/`sends_failed`.
#[derive(Debug, Default)]
pub struct TransportMeter {
    bytes_shuffled: AtomicU64,
    pages_shuffled: AtomicU64,
    bytes_retransmitted: AtomicU64,
    sends_failed: AtomicU64,
}

/// A point-in-time snapshot of the logical counters, used to roll back an
/// aborted stage attempt.
#[derive(Debug, Clone, Copy)]
pub struct MeterCheckpoint {
    bytes: u64,
    pages: u64,
}

impl TransportMeter {
    /// One logical page delivered.
    pub fn on_delivered(&self, bytes: usize) {
        self.bytes_shuffled
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.pages_shuffled.fetch_add(1, Ordering::Relaxed);
    }

    /// One wire-level attempt failed and will be retried (or replayed).
    pub fn on_failed_attempt(&self, bytes: usize) {
        self.bytes_retransmitted
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.sends_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the logical counters before a stage attempt.
    pub fn checkpoint(&self) -> MeterCheckpoint {
        MeterCheckpoint {
            bytes: self.bytes_shuffled.load(Ordering::Relaxed),
            pages: self.pages_shuffled.load(Ordering::Relaxed),
        }
    }

    /// Reclassify everything delivered since `at` as retransmission: the
    /// stage attempt aborted, so its deliveries were wasted wire work, not
    /// logical shuffle traffic (the replay will re-deliver them).
    pub fn rollback(&self, at: MeterCheckpoint) {
        let wasted_bytes = self.bytes_shuffled.load(Ordering::Relaxed) - at.bytes;
        let wasted_pages = self.pages_shuffled.load(Ordering::Relaxed) - at.pages;
        self.bytes_shuffled.store(at.bytes, Ordering::Relaxed);
        self.pages_shuffled.store(at.pages, Ordering::Relaxed);
        self.bytes_retransmitted
            .fetch_add(wasted_bytes, Ordering::Relaxed);
        self.sends_failed.fetch_add(wasted_pages, Ordering::Relaxed);
    }

    /// Logical bytes delivered.
    pub fn bytes_shuffled(&self) -> u64 {
        self.bytes_shuffled.load(Ordering::Relaxed)
    }

    /// Logical pages delivered.
    pub fn pages_shuffled(&self) -> u64 {
        self.pages_shuffled.load(Ordering::Relaxed)
    }

    /// Wire bytes wasted on dropped attempts and aborted stage deliveries.
    pub fn bytes_retransmitted(&self) -> u64 {
        self.bytes_retransmitted.load(Ordering::Relaxed)
    }

    /// Wire-level send attempts that did not result in a logical delivery.
    pub fn sends_failed(&self) -> u64 {
        self.sends_failed.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------- the trait

/// The single boundary for inter-node page movement. See the module docs
/// for the delivery contract.
pub trait Transport: Send + Sync {
    /// Implementation name (reported by `repro faults`).
    fn name(&self) -> &'static str;

    /// Queue one sealed page from `src` for delivery to `dst`'s inbox.
    /// May return before the page has arrived (streaming transports overlap
    /// delivery with the caller's next work).
    fn send(&self, src: NodeId, dst: NodeId, page: &SealedPage) -> PcResult<()>;

    /// Barrier: wait until every page queued for `dst` since the last
    /// collect has arrived, then hand them over in send order, exactly
    /// once.
    fn collect(&self, dst: NodeId) -> PcResult<Vec<SealedPage>>;

    /// Discard all in-flight and delivered-but-uncollected state — called
    /// by recovery before replaying a failed stage, so stale frames from
    /// the aborted attempt can never leak into the replay.
    fn reset(&self);

    /// Clear fault state for worker `w`: its backend restarted under a new
    /// liveness epoch. No-op for reliable transports.
    fn revive(&self, _w: NodeId) {}

    /// Enable fault injection (no-op for reliable transports). The cluster
    /// arms the transport for the duration of a job, so data loading stays
    /// clean and schedules are reproducible per job.
    fn arm(&self) {}

    /// Disable fault injection.
    fn disarm(&self) {}

    /// Human-readable injected-fault schedule, for one-line reproduction
    /// of a failing chaos seed.
    fn fault_summary(&self) -> Option<String> {
        None
    }
}

// ---------------------------------------------------------------- inbox

/// Per-destination delivery state shared by the reliable transports: a
/// seq-ordered map of delivered pages plus the count of logical sends
/// expected since the last collect. `BTreeMap` keyed by seq gives both
/// order restoration and exactly-once (a duplicate delivery of a seq
/// overwrites instead of duplicating).
#[derive(Default)]
struct InboxState {
    delivered: HashMap<NodeId, BTreeMap<u64, SealedPage>>,
    expected: HashMap<NodeId, u64>,
    next_seq: HashMap<NodeId, u64>,
}

struct Inbox {
    state: Mutex<InboxState>,
    arrived: Condvar,
}

impl Inbox {
    fn new() -> Self {
        Inbox {
            state: Mutex::new(InboxState::default()),
            arrived: Condvar::new(),
        }
    }

    /// Register one logical send to `dst`; returns its sequence number.
    fn expect(&self, dst: NodeId) -> u64 {
        let mut s = self.state.lock().expect("inbox poisoned");
        let seq = s.next_seq.entry(dst).or_insert(0);
        let n = *seq;
        *seq += 1;
        *s.expected.entry(dst).or_insert(0) += 1;
        n
    }

    /// Deliver a reassembled page.
    fn deliver(&self, dst: NodeId, seq: u64, page: SealedPage) {
        let mut s = self.state.lock().expect("inbox poisoned");
        s.delivered.entry(dst).or_default().insert(seq, page);
        self.arrived.notify_all();
    }

    /// Wait for every expected page, then drain them in seq order.
    fn collect(&self, dst: NodeId, deadline: Option<Duration>) -> PcResult<Vec<SealedPage>> {
        let start = Instant::now();
        let mut s = self.state.lock().expect("inbox poisoned");
        loop {
            let want = s.expected.get(&dst).copied().unwrap_or(0);
            let got = s.delivered.get(&dst).map(|m| m.len() as u64).unwrap_or(0);
            if got >= want {
                break;
            }
            match deadline {
                None => {
                    return Err(PcError::Transport(format!(
                        "collect({}) missing {} of {} pages on a synchronous transport",
                        node_name(dst),
                        want - got,
                        want
                    )))
                }
                Some(d) => {
                    let left = d.checked_sub(start.elapsed()).ok_or_else(|| {
                        PcError::Transport(format!(
                            "collect({}) deadline exceeded: {} of {} pages delivered after {:?}",
                            node_name(dst),
                            got,
                            want,
                            d
                        ))
                    })?;
                    let (guard, _timeout) =
                        self.arrived.wait_timeout(s, left).expect("inbox poisoned");
                    s = guard;
                }
            }
        }
        s.expected.remove(&dst);
        s.next_seq.remove(&dst);
        let pages = s.delivered.remove(&dst).unwrap_or_default();
        Ok(pages.into_values().collect())
    }

    fn reset(&self) {
        let mut s = self.state.lock().expect("inbox poisoned");
        *s = InboxState::default();
        self.arrived.notify_all();
    }
}

// ---------------------------------------------------------------- local

/// The synchronous in-process byte copy (the original simulated network):
/// `send` serializes, revalidates, and delivers in one step.
pub struct LocalTransport {
    meter: Arc<TransportMeter>,
    inbox: Inbox,
}

impl LocalTransport {
    /// A local transport metering into `meter`.
    pub fn new(meter: Arc<TransportMeter>) -> Self {
        LocalTransport {
            meter,
            inbox: Inbox::new(),
        }
    }
}

impl Transport for LocalTransport {
    fn name(&self) -> &'static str {
        "local"
    }

    fn send(&self, _src: NodeId, dst: NodeId, page: &SealedPage) -> PcResult<()> {
        let bytes = page.to_bytes();
        let seq = self.inbox.expect(dst);
        let arrived = SealedPage::from_bytes(&bytes)?;
        self.meter.on_delivered(bytes.len());
        self.inbox.deliver(dst, seq, arrived);
        Ok(())
    }

    fn collect(&self, dst: NodeId) -> PcResult<Vec<SealedPage>> {
        self.inbox.collect(dst, None)
    }

    fn reset(&self) {
        self.inbox.reset();
    }
}

// ---------------------------------------------------------------- stream

/// Tuning for [`StreamTransport`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Frame payload size a sealed page is chunked into.
    pub chunk_bytes: usize,
    /// Frames in flight before senders block (the flow-control window).
    pub frames_in_flight: usize,
    /// Per-send deadline: how long a sender may stay blocked on a full
    /// window before the master declares the link failed.
    pub send_deadline: Duration,
    /// Collect deadline: how long the master waits for a worker's inbox to
    /// fill before declaring the stage failed (the failure detector).
    pub collect_deadline: Duration,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            chunk_bytes: 4 << 10,
            frames_in_flight: 64,
            send_deadline: Duration::from_secs(5),
            collect_deadline: Duration::from_secs(10),
        }
    }
}

enum Frame {
    Chunk {
        epoch: u64,
        dst: NodeId,
        seq: u64,
        idx: u32,
        total: u32,
        bytes: Vec<u8>,
    },
    Shutdown,
}

/// A flow-controlled streaming transport: pages are chunked into frames and
/// pushed through a bounded channel to a demux thread that reassembles and
/// delivers them while the sender moves on — shuffles overlap with the
/// compute that produces the next pages instead of barriering per page.
pub struct StreamTransport {
    inbox: Arc<Inbox>,
    config: StreamConfig,
    tx: crossbeam_channel::Sender<Frame>,
    epoch: Arc<AtomicU64>,
    demux: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl StreamTransport {
    /// Spawns the demux thread and returns the transport.
    pub fn new(meter: Arc<TransportMeter>, config: StreamConfig) -> Self {
        let (tx, rx) = crossbeam_channel::bounded::<Frame>(config.frames_in_flight);
        let inbox = Arc::new(Inbox::new());
        let epoch = Arc::new(AtomicU64::new(0));
        let demux = {
            let inbox = inbox.clone();
            let epoch = epoch.clone();
            std::thread::Builder::new()
                .name(format!("pc-transport-demux-{}", unique_suffix()))
                .spawn(move || {
                    // (dst, seq) → (epoch, collected chunks); completed
                    // pages are validated and delivered to the inbox.
                    type Reassembly = HashMap<(NodeId, u64), (u64, Vec<Option<Vec<u8>>>)>;
                    let mut partial: Reassembly = HashMap::new();
                    while let Ok(frame) = rx.recv() {
                        match frame {
                            Frame::Shutdown => break,
                            Frame::Chunk {
                                epoch: fe,
                                dst,
                                seq,
                                idx,
                                total,
                                bytes,
                            } => {
                                let now = epoch.load(Ordering::Acquire);
                                if fe != now {
                                    // A stale frame from an aborted stage
                                    // attempt: drop it, and any partial
                                    // pages from dead epochs.
                                    partial.retain(|_, (e, _)| *e == now);
                                    continue;
                                }
                                let entry = partial
                                    .entry((dst, seq))
                                    .or_insert_with(|| (fe, vec![None; total as usize]));
                                entry.1[idx as usize] = Some(bytes);
                                if entry.1.iter().all(Option::is_some) {
                                    let (_, chunks) = partial.remove(&(dst, seq)).unwrap();
                                    let mut whole = Vec::new();
                                    for c in chunks {
                                        whole.extend_from_slice(&c.unwrap());
                                    }
                                    match SealedPage::from_bytes(&whole) {
                                        Ok(page) => {
                                            meter.on_delivered(whole.len());
                                            inbox.deliver(dst, seq, page);
                                        }
                                        Err(_) => {
                                            // A torn page never reaches the
                                            // inbox; the collect deadline
                                            // surfaces it as a stage failure.
                                            meter.on_failed_attempt(whole.len());
                                        }
                                    }
                                }
                            }
                        }
                    }
                })
                .expect("spawn transport demux thread")
        };
        StreamTransport {
            inbox,
            config,
            tx,
            epoch,
            demux: Mutex::new(Some(demux)),
        }
    }
}

impl Transport for StreamTransport {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn send(&self, _src: NodeId, dst: NodeId, page: &SealedPage) -> PcResult<()> {
        let bytes = page.to_bytes();
        let seq = self.inbox.expect(dst);
        let epoch = self.epoch.load(Ordering::Acquire);
        let chunks: Vec<&[u8]> = bytes.chunks(self.config.chunk_bytes.max(1)).collect();
        let total = chunks.len() as u32;
        for (idx, chunk) in chunks.into_iter().enumerate() {
            let frame = Frame::Chunk {
                epoch,
                dst,
                seq,
                idx: idx as u32,
                total,
                bytes: chunk.to_vec(),
            };
            self.tx
                .send_timeout(frame, self.config.send_deadline)
                .map_err(|e| {
                    PcError::Transport(match e {
                        crossbeam_channel::SendTimeoutError::Timeout(_) => format!(
                            "send to {} exceeded the {:?} deadline (window stalled)",
                            node_name(dst),
                            self.config.send_deadline
                        ),
                        crossbeam_channel::SendTimeoutError::Disconnected(_) => {
                            "transport demux thread is gone".to_string()
                        }
                    })
                })?;
        }
        Ok(())
    }

    fn collect(&self, dst: NodeId) -> PcResult<Vec<SealedPage>> {
        self.inbox.collect(dst, Some(self.config.collect_deadline))
    }

    fn reset(&self) {
        // New epoch first, so frames still in the channel are recognizably
        // stale by the time the inbox is cleared.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.inbox.reset();
    }
}

impl Drop for StreamTransport {
    fn drop(&mut self) {
        let _ = self.tx.send(Frame::Shutdown);
        if let Some(h) = self.demux.lock().expect("demux handle poisoned").take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------- faults

/// Fault categories a [`FaultyTransport`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A wire-level loss of a send attempt (retried, or surfaced).
    Drop,
    /// A delivery delay of a few milliseconds.
    Delay,
    /// Two consecutive sends to the same destination swap on the wire.
    Reorder,
    /// A worker's backend dies at a scheduled send index; every later send
    /// touching it fails until recovery revives it.
    WorkerDeath,
}

impl FaultKind {
    fn tag(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
            FaultKind::WorkerDeath => "worker-death",
        }
    }
}

/// A reproducible fault schedule: everything the [`FaultyTransport`]
/// injects is a pure function of this spec, so a failing chaos seed is a
/// one-line repro.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Seed driving every per-send decision.
    pub seed: u64,
    /// Which fault kinds are enabled.
    pub kinds: Vec<FaultKind>,
    /// Per-send fault probability, in 256ths, for drop/delay/reorder.
    pub rate: u16,
    /// Wire drops injected per faulted send are capped here; the next
    /// attempt always succeeds, so retries are guaranteed to converge.
    pub max_drops_per_send: u32,
    /// Retry dropped attempts in-place. When false a drop surfaces as a
    /// transport error and stage replay recovers instead.
    pub retries: bool,
    /// Global send index at which the victim dies (derived from the seed
    /// when `WorkerDeath` is enabled and this is `None`).
    pub death_at: Option<u64>,
    /// The worker that dies (derived from the seed when `None`).
    pub victim: Option<NodeId>,
    /// Budget of volatile faults (drop/delay/reorder) injected over the
    /// transport's lifetime; once spent, the schedule goes quiet. Lets a
    /// test script *exactly N faults* deterministically.
    pub max_faults: u64,
}

impl FaultSpec {
    /// A schedule over the given kinds, everything else derived from seed.
    pub fn seeded(seed: u64, kinds: &[FaultKind]) -> Self {
        FaultSpec {
            seed,
            kinds: kinds.to_vec(),
            rate: 48,
            max_drops_per_send: 2,
            retries: true,
            death_at: None,
            victim: None,
            max_faults: u64::MAX,
        }
    }
}

/// SplitMix64: a stateless, order-independent hash of (seed, send index,
/// salt) — the same send index always draws the same fault decision, so
/// schedules replay exactly from the seed.
fn mix(seed: u64, n: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-destination reorder bookkeeping: `perm[inner_idx]` is the logical
/// send index of the page handed to the inner transport as its
/// `inner_idx`-th send this round. Collect un-permutes with it, restoring
/// logical order no matter what the schedule swapped.
#[derive(Default)]
struct ChanState {
    perm: Vec<usize>,
    next_logical: usize,
    holdback: Option<(usize, Vec<u8>)>,
}

/// Decorates any [`Transport`] with seed-driven fault injection. Despite
/// the chaos underneath, the decorated transport still satisfies the full
/// delivery contract (exactly-once, order-restored) whenever `retries` is
/// on and no death fires — and recovery restores it end-to-end otherwise.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    spec: FaultSpec,
    workers: usize,
    meter: Arc<TransportMeter>,
    armed: AtomicBool,
    sends: AtomicU64,
    faults_injected: AtomicU64,
    death_fired: AtomicBool,
    dead: Mutex<HashSet<NodeId>>,
    chans: Mutex<HashMap<NodeId, ChanState>>,
}

impl FaultyTransport {
    /// Wraps `inner`, injecting faults over a cluster of `workers` nodes.
    pub fn new(
        inner: Arc<dyn Transport>,
        meter: Arc<TransportMeter>,
        spec: FaultSpec,
        workers: usize,
    ) -> Self {
        FaultyTransport {
            inner,
            spec,
            workers: workers.max(1),
            meter,
            armed: AtomicBool::new(false),
            sends: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            death_fired: AtomicBool::new(false),
            dead: Mutex::new(HashSet::new()),
            chans: Mutex::new(HashMap::new()),
        }
    }

    fn death_point(&self) -> Option<(u64, NodeId)> {
        if !self.spec.kinds.contains(&FaultKind::WorkerDeath) {
            return None;
        }
        let at = self
            .spec
            .death_at
            .unwrap_or_else(|| mix(self.spec.seed, 0, 0xDEAD) % 24);
        let victim = self
            .spec
            .victim
            .unwrap_or_else(|| (mix(self.spec.seed, 1, 0xDEAD) as usize) % self.workers);
        Some((at, victim))
    }

    /// The volatile fault (if any) scheduled for global send `n`.
    fn volatile_fault(&self, n: u64) -> Option<FaultKind> {
        let volatile: Vec<FaultKind> = self
            .spec
            .kinds
            .iter()
            .copied()
            .filter(|k| *k != FaultKind::WorkerDeath)
            .collect();
        if volatile.is_empty() {
            return None;
        }
        let h = mix(self.spec.seed, n, 0xFA17);
        if (h % 256) as u16 >= self.spec.rate {
            return None;
        }
        Some(volatile[(h >> 32) as usize % volatile.len()])
    }

    /// Consumes one unit of the volatile-fault budget; `false` once spent.
    fn take_fault_budget(&self) -> bool {
        let max = self.spec.max_faults;
        self.faults_injected
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                (c < max).then_some(c + 1)
            })
            .is_ok()
    }

    fn check_alive(&self, src: NodeId, dst: NodeId) -> PcResult<()> {
        let dead = self.dead.lock().expect("dead set poisoned");
        if dead.contains(&dst) {
            return Err(PcError::WorkerDead(dst));
        }
        if dead.contains(&src) {
            return Err(PcError::WorkerDead(src));
        }
        Ok(())
    }

    /// Deliver to the inner transport, recording the logical index in the
    /// destination's permutation.
    fn deliver(&self, src: NodeId, dst: NodeId, page: &SealedPage, logical: usize) -> PcResult<()> {
        self.inner.send(src, dst, page)?;
        let mut chans = self.chans.lock().expect("chan state poisoned");
        chans.entry(dst).or_default().perm.push(logical);
        Ok(())
    }
}

impl Transport for FaultyTransport {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn send(&self, src: NodeId, dst: NodeId, page: &SealedPage) -> PcResult<()> {
        let armed = self.armed.load(Ordering::Relaxed);
        // Assign the logical index first: order restoration is defined by
        // call order at this boundary, not by what survives the wire.
        let logical = {
            let mut chans = self.chans.lock().expect("chan state poisoned");
            let c = chans.entry(dst).or_default();
            let l = c.next_logical;
            c.next_logical += 1;
            l
        };
        if armed {
            // The schedule's send counter only ticks while armed, so the
            // seed describes the *job's* traffic, not whatever data loading
            // happened to precede it.
            let n = self.sends.fetch_add(1, Ordering::Relaxed);
            if let Some((at, victim)) = self.death_point() {
                if n >= at && !self.death_fired.swap(true, Ordering::Relaxed) {
                    self.dead.lock().expect("dead set poisoned").insert(victim);
                }
            }
            self.check_alive(src, dst)?;
            let fault = self.volatile_fault(n).filter(|_| self.take_fault_budget());
            match fault {
                Some(FaultKind::Delay) => {
                    std::thread::sleep(Duration::from_millis(1 + mix(self.spec.seed, n, 1) % 4));
                }
                Some(FaultKind::Drop) => {
                    let cap = self.spec.max_drops_per_send.max(1) as u64;
                    let drops = 1 + mix(self.spec.seed, n, 2) % cap;
                    let len = page.to_bytes().len();
                    for _ in 0..drops {
                        self.meter.on_failed_attempt(len);
                    }
                    if !self.spec.retries {
                        return Err(PcError::Transport(format!(
                            "send #{n} to {} dropped on the wire (retries disabled)",
                            node_name(dst)
                        )));
                    }
                    // Retried in place: fall through to a clean delivery.
                }
                Some(FaultKind::Reorder) => {
                    let mut chans = self.chans.lock().expect("chan state poisoned");
                    let c = chans.entry(dst).or_default();
                    if c.holdback.is_none() {
                        // Stash this page; it goes out after the next send
                        // to the same destination (or at collect).
                        c.holdback = Some((logical, page.to_bytes()));
                        return Ok(());
                    }
                    // A stash is already pending: deliver normally below.
                }
                _ => {}
            }
        }
        self.deliver(src, dst, page, logical)?;
        // Flush a pending stash *after* the newer page: that is the swap.
        let stashed = {
            let mut chans = self.chans.lock().expect("chan state poisoned");
            chans.entry(dst).or_default().holdback.take()
        };
        if let Some((held_logical, bytes)) = stashed {
            let held = SealedPage::from_bytes(&bytes)?;
            self.deliver(src, dst, &held, held_logical)?;
        }
        Ok(())
    }

    fn collect(&self, dst: NodeId) -> PcResult<Vec<SealedPage>> {
        // Flush any stash that never saw a follow-up send.
        let stashed = {
            let mut chans = self.chans.lock().expect("chan state poisoned");
            chans.entry(dst).or_default().holdback.take()
        };
        if let Some((held_logical, bytes)) = stashed {
            self.check_alive(MASTER, dst)?;
            let held = SealedPage::from_bytes(&bytes)?;
            self.deliver(MASTER, dst, &held, held_logical)?;
        }
        let inner_order = self.inner.collect(dst)?;
        let perm = {
            let mut chans = self.chans.lock().expect("chan state poisoned");
            chans.remove(&dst).unwrap_or_default().perm
        };
        if perm.len() != inner_order.len() {
            return Err(PcError::Transport(format!(
                "collect({}): {} pages delivered, {} sent",
                node_name(dst),
                inner_order.len(),
                perm.len()
            )));
        }
        // Un-permute: inner order → logical send order.
        let mut out: Vec<Option<SealedPage>> = (0..inner_order.len()).map(|_| None).collect();
        for (inner_idx, page) in inner_order.into_iter().enumerate() {
            out[perm[inner_idx]] = Some(page);
        }
        Ok(out
            .into_iter()
            .map(|p| p.expect("perm is a bijection"))
            .collect())
    }

    fn reset(&self) {
        self.chans.lock().expect("chan state poisoned").clear();
        self.inner.reset();
    }

    fn revive(&self, w: NodeId) {
        self.dead.lock().expect("dead set poisoned").remove(&w);
        self.inner.revive(w);
    }

    fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    fn fault_summary(&self) -> Option<String> {
        let kinds: Vec<&str> = self.spec.kinds.iter().map(|k| k.tag()).collect();
        let death = self
            .death_point()
            .map(|(at, v)| format!(" death@send{at}->worker{v}"))
            .unwrap_or_default();
        Some(format!(
            "seed={:#x} kinds=[{}] rate={}/256 max_drops={} retries={}{} over {}",
            self.spec.seed,
            kinds.join(","),
            self.spec.rate,
            self.spec.max_drops_per_send,
            self.spec.retries,
            death,
            self.inner.name()
        ))
    }
}

// ---------------------------------------------------------------- config

/// Declarative transport selection, carried by `ClusterConfig` so tests,
/// `repro faults`, and the chaos CI matrix can describe a transport stack
/// without touching construction code.
#[derive(Debug, Clone, Default)]
pub enum TransportKind {
    /// The synchronous in-process byte copy.
    #[default]
    Local,
    /// Chunked, flow-controlled streaming with a demux thread.
    Stream(StreamConfig),
    /// Fault injection decorating another transport.
    Faulty {
        /// The transport actually moving bytes underneath.
        inner: Box<TransportKind>,
        /// The seed-driven schedule.
        spec: FaultSpec,
    },
}

impl TransportKind {
    /// Builds the transport stack, metering into `meter`, for a cluster of
    /// `workers` nodes.
    pub fn build(&self, meter: Arc<TransportMeter>, workers: usize) -> Arc<dyn Transport> {
        match self {
            TransportKind::Local => Arc::new(LocalTransport::new(meter)),
            TransportKind::Stream(cfg) => Arc::new(StreamTransport::new(meter, cfg.clone())),
            TransportKind::Faulty { inner, spec } => {
                let base = inner.build(meter.clone(), workers);
                Arc::new(FaultyTransport::new(base, meter, spec.clone(), workers))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_lambda::SetWriter;
    use pc_object::{make_object, PcVec};

    fn page(tag: i64) -> SealedPage {
        let mut w = SetWriter::new(1 << 14);
        w.write_with(|| {
            let v = make_object::<PcVec<i64>>()?;
            for i in 0..32 {
                v.push(tag * 100 + i)?;
            }
            Ok(v.erase())
        })
        .unwrap();
        w.finish().unwrap().into_iter().next().unwrap()
    }

    fn tag_of(p: &SealedPage) -> i64 {
        let (_b, root) = p.open_view().unwrap();
        let objs = root
            .downcast::<PcVec<pc_object::Handle<pc_object::AnyObj>>>()
            .unwrap();
        let first = objs.iter().next().unwrap().erase();
        first.downcast::<PcVec<i64>>().unwrap().get(0) / 100
    }

    #[test]
    fn local_transport_delivers_in_order_and_meters() {
        let meter = Arc::new(TransportMeter::default());
        let t = LocalTransport::new(meter.clone());
        for i in 0..5 {
            t.send(MASTER, 1, &page(i)).unwrap();
        }
        let got = t.collect(1).unwrap();
        assert_eq!(got.len(), 5);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(tag_of(p), i as i64);
        }
        assert_eq!(meter.pages_shuffled(), 5);
        assert!(meter.bytes_shuffled() > 0);
        assert_eq!(meter.bytes_retransmitted(), 0);
    }

    #[test]
    fn stream_transport_reassembles_chunked_pages() {
        let meter = Arc::new(TransportMeter::default());
        let t = StreamTransport::new(
            meter.clone(),
            StreamConfig {
                chunk_bytes: 128, // force many frames per page
                frames_in_flight: 4,
                ..StreamConfig::default()
            },
        );
        let originals: Vec<SealedPage> = (0..6).map(page).collect();
        for (i, p) in originals.iter().enumerate() {
            t.send(0, i % 2, p).unwrap();
        }
        for dst in 0..2usize {
            let got = t.collect(dst).unwrap();
            assert_eq!(got.len(), 3);
            for (k, p) in got.iter().enumerate() {
                let expect = &originals[dst + 2 * k];
                assert_eq!(p.to_bytes(), expect.to_bytes(), "torn or misordered page");
            }
        }
        assert_eq!(meter.pages_shuffled(), 6);
    }

    #[test]
    fn faulty_reorder_is_invisible_after_collect() {
        let meter = Arc::new(TransportMeter::default());
        let inner: Arc<dyn Transport> = Arc::new(LocalTransport::new(meter.clone()));
        let t = FaultyTransport::new(
            inner,
            meter,
            FaultSpec {
                rate: 256, // reorder every send
                ..FaultSpec::seeded(7, &[FaultKind::Reorder])
            },
            3,
        );
        t.arm();
        for i in 0..7 {
            t.send(MASTER, 0, &page(i)).unwrap();
        }
        let got = t.collect(0).unwrap();
        assert_eq!(got.len(), 7);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(tag_of(p), i as i64, "order must be restored");
        }
    }

    #[test]
    fn faulty_drops_meter_retransmission_not_shuffle() {
        let meter = Arc::new(TransportMeter::default());
        let inner: Arc<dyn Transport> = Arc::new(LocalTransport::new(meter.clone()));
        let t = FaultyTransport::new(
            inner,
            meter.clone(),
            FaultSpec {
                rate: 256,
                ..FaultSpec::seeded(11, &[FaultKind::Drop])
            },
            3,
        );
        t.arm();
        for i in 0..4 {
            t.send(MASTER, 1, &page(i)).unwrap();
        }
        let got = t.collect(1).unwrap();
        assert_eq!(got.len(), 4, "every page still arrives exactly once");
        assert_eq!(meter.pages_shuffled(), 4);
        assert!(meter.sends_failed() > 0, "drops were injected");
        assert!(meter.bytes_retransmitted() > 0);
    }

    #[test]
    fn worker_death_fails_sends_until_revived() {
        let meter = Arc::new(TransportMeter::default());
        let inner: Arc<dyn Transport> = Arc::new(LocalTransport::new(meter.clone()));
        let t = FaultyTransport::new(
            inner,
            meter,
            FaultSpec {
                death_at: Some(2),
                victim: Some(1),
                ..FaultSpec::seeded(3, &[FaultKind::WorkerDeath])
            },
            3,
        );
        t.arm();
        t.send(MASTER, 1, &page(0)).unwrap();
        t.send(MASTER, 1, &page(1)).unwrap();
        assert_eq!(
            t.send(MASTER, 1, &page(2)),
            Err(PcError::WorkerDead(1)),
            "sends to the dead worker must fail"
        );
        assert_eq!(t.send(MASTER, 0, &page(3)), Ok(()), "other links stay up");
        t.reset();
        t.revive(1);
        t.send(MASTER, 1, &page(4)).unwrap();
        let got = t.collect(1).unwrap();
        assert_eq!(got.len(), 1, "reset discarded the aborted deliveries");
        assert_eq!(tag_of(&got[0]), 4);
    }

    #[test]
    fn meter_rollback_reclassifies_aborted_deliveries() {
        let meter = Arc::new(TransportMeter::default());
        let t = LocalTransport::new(meter.clone());
        t.send(MASTER, 0, &page(0)).unwrap();
        let snap = meter.checkpoint();
        t.send(MASTER, 0, &page(1)).unwrap();
        t.send(MASTER, 0, &page(2)).unwrap();
        let before = meter.bytes_shuffled();
        meter.rollback(snap);
        assert_eq!(meter.pages_shuffled(), 1);
        assert_eq!(meter.sends_failed(), 2);
        assert_eq!(
            meter.bytes_shuffled() + meter.bytes_retransmitted(),
            before,
            "rollback moves bytes, it never loses them"
        );
    }
}
