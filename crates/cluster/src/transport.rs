//! The transport boundary: every byte that crosses between nodes goes
//! through a [`Transport`].
//!
//! The trait contract (relied on by the chaos suite and the transport
//! property tests):
//!
//! * **Exactly-once** — each page passed to [`Transport::send`] is handed
//!   out by [`Transport::collect`] exactly once, even when the wire drops
//!   or duplicates attempts underneath.
//! * **Order-restored** — `collect(dst)` returns pages in the order they
//!   were sent to `dst`, even when frames were chunked, interleaved, or
//!   reordered in flight. Deterministic stages + ordered delivery is what
//!   makes replay-based recovery byte-identical.
//! * **Metered** — logical traffic is counted once in the shared
//!   [`TransportMeter`]; wire-level waste (dropped attempts, aborted stage
//!   deliveries) is counted separately as retransmission, so a lossy run
//!   reports the same `bytes_shuffled` as a clean one.
//!
//! Four implementations:
//!
//! * [`LocalTransport`] — the synchronous in-process byte copy the cluster
//!   has always used (the default).
//! * [`StreamTransport`] — chunks sealed pages into CRC-checksummed wire
//!   frames ([`crate::wire`]) and pushes them through a bounded channel to
//!   a demux thread that reassembles them concurrently, so delivery
//!   overlaps with downstream compute; the bounded channel is the flow
//!   control, and collects carry a deadline (the master-side failure
//!   detector).
//! * [`TcpTransport`] — the same frames over real `std::net` TCP sockets:
//!   one listener per node, a poll loop (the vendored `mio` shim)
//!   demuxing every inbound connection, continuous worker heartbeats
//!   feeding a master-side liveness monitor, and crash-restart
//!   reconnection with bounded, jittered exponential backoff.
//! * [`FaultyTransport`] — a decorator that injects drops, delays,
//!   reorders, payload corruption, and whole-worker deaths from a
//!   reproducible seed-driven schedule.
//!
//! Wire failures never panic and never surface garbage pages: checksum
//! rejects, truncated frames, and incomplete reassembly all become typed
//! [`PcError::Transport`] errors at collect time, which the recovery layer
//! answers with a stage replay.

use crate::cluster::unique_suffix;
use crate::wire::{self, Decoded, FrameKind, WireFrame};
use pc_object::{PcError, PcResult, SealedPage};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A node address: worker index, or [`MASTER`].
pub type NodeId = usize;

/// The master node's address (gather point for broadcasts).
pub const MASTER: NodeId = usize::MAX;

fn node_name(n: NodeId) -> String {
    if n == MASTER {
        "master".to_string()
    } else {
        format!("worker {n}")
    }
}

// ---------------------------------------------------------------- metering

/// Cluster-wide traffic counters, shared by the cluster handle and every
/// transport layer. Logical traffic (`bytes_shuffled`/`pages_shuffled`)
/// counts each delivered page once; wire-level waste goes to
/// `bytes_retransmitted`/`sends_failed`.
#[derive(Debug, Default)]
pub struct TransportMeter {
    bytes_shuffled: AtomicU64,
    pages_shuffled: AtomicU64,
    bytes_retransmitted: AtomicU64,
    sends_failed: AtomicU64,
    heartbeats_missed: AtomicU64,
    reconnects: AtomicU64,
}

/// A point-in-time snapshot of the logical counters, used to roll back an
/// aborted stage attempt.
#[derive(Debug, Clone, Copy)]
pub struct MeterCheckpoint {
    bytes: u64,
    pages: u64,
}

impl TransportMeter {
    /// One logical page delivered.
    pub fn on_delivered(&self, bytes: usize) {
        self.bytes_shuffled
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.pages_shuffled.fetch_add(1, Ordering::Relaxed);
    }

    /// One wire-level attempt failed and will be retried (or replayed).
    pub fn on_failed_attempt(&self, bytes: usize) {
        self.bytes_retransmitted
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.sends_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the logical counters before a stage attempt.
    pub fn checkpoint(&self) -> MeterCheckpoint {
        MeterCheckpoint {
            bytes: self.bytes_shuffled.load(Ordering::Relaxed),
            pages: self.pages_shuffled.load(Ordering::Relaxed),
        }
    }

    /// Reclassify everything delivered since `at` as retransmission: the
    /// stage attempt aborted, so its deliveries were wasted wire work, not
    /// logical shuffle traffic (the replay will re-deliver them).
    pub fn rollback(&self, at: MeterCheckpoint) {
        let wasted_bytes = self.bytes_shuffled.load(Ordering::Relaxed) - at.bytes;
        let wasted_pages = self.pages_shuffled.load(Ordering::Relaxed) - at.pages;
        self.bytes_shuffled.store(at.bytes, Ordering::Relaxed);
        self.pages_shuffled.store(at.pages, Ordering::Relaxed);
        self.bytes_retransmitted
            .fetch_add(wasted_bytes, Ordering::Relaxed);
        self.sends_failed.fetch_add(wasted_pages, Ordering::Relaxed);
    }

    /// Logical bytes delivered.
    pub fn bytes_shuffled(&self) -> u64 {
        self.bytes_shuffled.load(Ordering::Relaxed)
    }

    /// Logical pages delivered.
    pub fn pages_shuffled(&self) -> u64 {
        self.pages_shuffled.load(Ordering::Relaxed)
    }

    /// Wire bytes wasted on dropped attempts and aborted stage deliveries.
    pub fn bytes_retransmitted(&self) -> u64 {
        self.bytes_retransmitted.load(Ordering::Relaxed)
    }

    /// Wire-level send attempts that did not result in a logical delivery.
    pub fn sends_failed(&self) -> u64 {
        self.sends_failed.load(Ordering::Relaxed)
    }

    /// One heartbeat interval passed without a beat from a live worker.
    pub fn on_heartbeat_missed(&self) {
        self.heartbeats_missed.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection re-established after a failure (with backoff).
    pub fn on_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Heartbeat intervals that elapsed with no beat from a worker.
    ///
    /// Liveness counters are wire-level facts, not logical traffic: a
    /// [`rollback`](Self::rollback) reclassifies deliveries but never
    /// touches these (the beats really were missed, the links really were
    /// re-dialed, regardless of how the stage attempt ended).
    pub fn heartbeats_missed(&self) -> u64 {
        self.heartbeats_missed.load(Ordering::Relaxed)
    }

    /// Connections re-established after a failure. Monotone across
    /// checkpoint/rollback, like [`heartbeats_missed`](Self::heartbeats_missed).
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------- the trait

/// The single boundary for inter-node page movement. See the module docs
/// for the delivery contract.
pub trait Transport: Send + Sync {
    /// Implementation name (reported by `repro faults`).
    fn name(&self) -> &'static str;

    /// Queue one sealed page from `src` for delivery to `dst`'s inbox.
    /// May return before the page has arrived (streaming transports overlap
    /// delivery with the caller's next work).
    fn send(&self, src: NodeId, dst: NodeId, page: &SealedPage) -> PcResult<()>;

    /// Barrier: wait until every page queued for `dst` since the last
    /// collect has arrived, then hand them over in send order, exactly
    /// once.
    fn collect(&self, dst: NodeId) -> PcResult<Vec<SealedPage>>;

    /// Discard all in-flight and delivered-but-uncollected state — called
    /// by recovery before replaying a failed stage, so stale frames from
    /// the aborted attempt can never leak into the replay.
    fn reset(&self);

    /// Clear fault state for worker `w`: its backend restarted under a new
    /// liveness epoch. No-op for reliable transports.
    fn revive(&self, _w: NodeId) {}

    /// Enable fault injection (no-op for reliable transports). The cluster
    /// arms the transport for the duration of a job, so data loading stays
    /// clean and schedules are reproducible per job.
    fn arm(&self) {}

    /// Disable fault injection.
    fn disarm(&self) {}

    /// Human-readable injected-fault schedule, for one-line reproduction
    /// of a failing chaos seed.
    fn fault_summary(&self) -> Option<String> {
        None
    }

    /// Wire-corruption hook for fault injection: performs the logical send
    /// of `page`, but one seed-chosen frame goes out with a bit flipped
    /// *after* its checksum was computed. With `retransmit` the clean frame
    /// follows (modeling link-level retransmission after a checksum
    /// reject), so the page still arrives exactly once; without it the page
    /// is lost on the wire and surfaces as a typed transport error at
    /// collect, which stage replay recovers.
    ///
    /// Transports without a wire (the in-process copy) deliver normally
    /// under `retransmit` — there is nothing between encode and decode to
    /// corrupt — and refuse otherwise.
    fn send_corrupted(
        &self,
        src: NodeId,
        dst: NodeId,
        page: &SealedPage,
        _flip_seed: u64,
        retransmit: bool,
    ) -> PcResult<()> {
        if retransmit {
            return self.send(src, dst, page);
        }
        Err(PcError::Transport(format!(
            "{} has no wire to corrupt",
            self.name()
        )))
    }

    /// Crash worker `w`'s backend endpoint: heartbeats stop and its
    /// connections die. No-op for transports without liveness machinery
    /// (fault decorators model death themselves and forward this inward).
    fn kill(&self, _w: NodeId) {}

    /// Workers the failure detector currently suspects (missed-heartbeat
    /// count at or past the threshold). Empty for transports without
    /// heartbeats.
    fn suspects(&self) -> Vec<NodeId> {
        Vec::new()
    }
}

// ---------------------------------------------------------------- inbox

/// Per-destination delivery state shared by the reliable transports: a
/// seq-ordered map of delivered pages plus the count of logical sends
/// expected since the last collect. `BTreeMap` keyed by seq gives both
/// order restoration and exactly-once (a duplicate delivery of a seq
/// overwrites instead of duplicating).
#[derive(Default)]
struct InboxState {
    delivered: HashMap<NodeId, BTreeMap<u64, SealedPage>>,
    expected: HashMap<NodeId, u64>,
    next_seq: HashMap<NodeId, u64>,
    /// Destinations whose delivery stream is known-broken (reassembly
    /// inconsistency, torn page, framing corruption): collect surfaces the
    /// stored reason as a typed error instead of stalling to its deadline.
    failed: HashMap<NodeId, String>,
}

struct Inbox {
    state: Mutex<InboxState>,
    arrived: Condvar,
}

impl Inbox {
    fn new() -> Self {
        Inbox {
            state: Mutex::new(InboxState::default()),
            arrived: Condvar::new(),
        }
    }

    /// Register one logical send to `dst`; returns its sequence number.
    fn expect(&self, dst: NodeId) -> u64 {
        let mut s = self.state.lock().expect("inbox poisoned");
        let seq = s.next_seq.entry(dst).or_insert(0);
        let n = *seq;
        *seq += 1;
        *s.expected.entry(dst).or_insert(0) += 1;
        n
    }

    /// Deliver a reassembled page.
    fn deliver(&self, dst: NodeId, seq: u64, page: SealedPage) {
        let mut s = self.state.lock().expect("inbox poisoned");
        s.delivered.entry(dst).or_default().insert(seq, page);
        self.arrived.notify_all();
    }

    /// Poison `dst`'s delivery stream: the pending (and the next) collect
    /// fails immediately with a typed transport error instead of waiting
    /// out its deadline. This is how wire-level damage — a failed checksum
    /// with no retransmission, a truncated connection, an inconsistent
    /// reassembly map — surfaces to the recovery layer.
    fn fail(&self, dst: NodeId, why: String) {
        let mut s = self.state.lock().expect("inbox poisoned");
        s.failed.entry(dst).or_insert(why);
        self.arrived.notify_all();
    }

    /// Wait for every expected page, then drain them in seq order.
    /// `interrupt` (the heartbeat failure detector) is re-checked on every
    /// wakeup and preempts the deadline with its own typed error.
    fn collect(
        &self,
        dst: NodeId,
        deadline: Option<Duration>,
        interrupt: Option<&dyn Fn() -> Option<PcError>>,
    ) -> PcResult<Vec<SealedPage>> {
        let start = Instant::now();
        let mut s = self.state.lock().expect("inbox poisoned");
        loop {
            if let Some(why) = s.failed.remove(&dst) {
                return Err(PcError::Transport(format!(
                    "collect({}): delivery stream broken: {why}",
                    node_name(dst)
                )));
            }
            if let Some(e) = interrupt.and_then(|probe| probe()) {
                return Err(e);
            }
            let want = s.expected.get(&dst).copied().unwrap_or(0);
            let got = s.delivered.get(&dst).map(|m| m.len() as u64).unwrap_or(0);
            if got >= want {
                break;
            }
            match deadline {
                None => {
                    return Err(PcError::Transport(format!(
                        "collect({}) missing {} of {} pages on a synchronous transport",
                        node_name(dst),
                        want - got,
                        want
                    )))
                }
                Some(d) => {
                    let left = d.checked_sub(start.elapsed()).ok_or_else(|| {
                        PcError::Transport(format!(
                            "collect({}) deadline exceeded: {} of {} pages delivered after {:?}",
                            node_name(dst),
                            got,
                            want,
                            d
                        ))
                    })?;
                    // With a failure detector watching, wake periodically to
                    // re-probe it rather than sleeping the whole deadline.
                    let nap = if interrupt.is_some() {
                        left.min(Duration::from_millis(5))
                    } else {
                        left
                    };
                    let (guard, _timeout) =
                        self.arrived.wait_timeout(s, nap).expect("inbox poisoned");
                    s = guard;
                }
            }
        }
        s.expected.remove(&dst);
        s.next_seq.remove(&dst);
        let pages = s.delivered.remove(&dst).unwrap_or_default();
        Ok(pages.into_values().collect())
    }

    fn reset(&self) {
        let mut s = self.state.lock().expect("inbox poisoned");
        *s = InboxState::default();
        self.arrived.notify_all();
    }
}

// ---------------------------------------------------------------- local

/// The synchronous in-process byte copy (the original simulated network):
/// `send` serializes, revalidates, and delivers in one step.
pub struct LocalTransport {
    meter: Arc<TransportMeter>,
    inbox: Inbox,
}

impl LocalTransport {
    /// A local transport metering into `meter`.
    pub fn new(meter: Arc<TransportMeter>) -> Self {
        LocalTransport {
            meter,
            inbox: Inbox::new(),
        }
    }
}

impl Transport for LocalTransport {
    fn name(&self) -> &'static str {
        "local"
    }

    fn send(&self, _src: NodeId, dst: NodeId, page: &SealedPage) -> PcResult<()> {
        let bytes = page.to_bytes();
        let seq = self.inbox.expect(dst);
        let arrived = SealedPage::from_bytes(&bytes)?;
        self.meter.on_delivered(bytes.len());
        self.inbox.deliver(dst, seq, arrived);
        Ok(())
    }

    fn collect(&self, dst: NodeId) -> PcResult<Vec<SealedPage>> {
        self.inbox.collect(dst, None, None)
    }

    fn reset(&self) {
        self.inbox.reset();
    }
}

// ---------------------------------------------------------------- stream

/// Tuning for [`StreamTransport`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Frame payload size a sealed page is chunked into.
    pub chunk_bytes: usize,
    /// Frames in flight before senders block (the flow-control window).
    pub frames_in_flight: usize,
    /// Per-send deadline: how long a sender may stay blocked on a full
    /// window before the master declares the link failed.
    pub send_deadline: Duration,
    /// Collect deadline: how long the master waits for a worker's inbox to
    /// fill before declaring the stage failed (the failure detector).
    pub collect_deadline: Duration,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            chunk_bytes: 4 << 10,
            frames_in_flight: 64,
            send_deadline: Duration::from_secs(5),
            collect_deadline: Duration::from_secs(10),
        }
    }
}

enum Frame {
    /// One encoded wire frame ([`crate::wire`]): checksummed bytes, exactly
    /// as a socket transport would put them on a connection.
    Wire(Vec<u8>),
    Shutdown,
}

/// Splits a page's bytes into encoded, checksummed data frames.
fn encode_page_frames(
    epoch: u64,
    src: NodeId,
    dst: NodeId,
    seq: u64,
    bytes: &[u8],
    chunk_bytes: usize,
) -> Vec<Vec<u8>> {
    let chunks: Vec<&[u8]> = bytes.chunks(chunk_bytes.max(1)).collect();
    let total = chunks.len() as u32;
    chunks
        .into_iter()
        .enumerate()
        .map(|(idx, c)| {
            WireFrame::data(
                epoch,
                src as u64,
                dst as u64,
                seq,
                idx as u32,
                total,
                c.to_vec(),
            )
            .encode()
        })
        .collect()
}

/// Chunk reassembly shared by the frame-based transports (the stream demux
/// thread and the TCP poll loop): collects data frames per (dst, seq),
/// validates completed pages, and delivers them — or poisons the
/// destination's inbox with a typed [`PcError::Transport`] when the frame
/// map is inconsistent or the page is torn. The demux side never panics;
/// recovery answers the poisoned collect with a stage replay.
struct Reassembler {
    partial: HashMap<(NodeId, u64), PartialPage>,
}

/// The epoch a partial page started under, plus its chunk slots.
type PartialPage = (u64, Vec<Option<Vec<u8>>>);

impl Reassembler {
    fn new() -> Self {
        Reassembler {
            partial: HashMap::new(),
        }
    }

    /// Drops partial pages left over from aborted-stage epochs.
    fn retain_epoch(&mut self, now: u64) {
        self.partial.retain(|_, (e, _)| *e == now);
    }

    fn accept(&mut self, frame: WireFrame, meter: &TransportMeter, inbox: &Inbox) {
        let dst = frame.dst as usize;
        let seq = frame.seq;
        let total = frame.total as usize;
        // A replay reuses sequence numbers from zero, so a partial page
        // left over from an aborted epoch must not absorb this epoch's
        // chunks: scrap it (its bytes were waste) and start clean.
        if let Some((e, chunks)) = self.partial.get(&(dst, seq)) {
            if *e != frame.epoch {
                let wasted: usize = chunks.iter().flatten().map(Vec::len).sum();
                meter.on_failed_attempt(wasted);
                self.partial.remove(&(dst, seq));
            }
        }
        let entry = self
            .partial
            .entry((dst, seq))
            .or_insert_with(|| (frame.epoch, vec![None; total]));
        if entry.1.len() != total {
            // Two checksum-valid frames of one page disagree about its
            // shape: the stream is damaged beyond what per-frame CRCs can
            // localize. Poison the destination instead of guessing.
            let wasted: usize = entry.1.iter().flatten().map(Vec::len).sum();
            let slots = entry.1.len();
            meter.on_failed_attempt(wasted + frame.payload.len());
            self.partial.remove(&(dst, seq));
            inbox.fail(
                dst,
                format!("page {seq}: inconsistent chunk map ({slots} slots vs total {total})"),
            );
            return;
        }
        entry.1[frame.idx as usize] = Some(frame.payload);
        if entry.1.iter().all(Option::is_some) {
            // Defensive extraction: a map inconsistency here becomes a
            // typed transport error on the destination, never a panic in
            // the demux thread.
            let Some((_, chunks)) = self.partial.remove(&(dst, seq)) else {
                inbox.fail(dst, format!("page {seq}: reassembly entry vanished"));
                return;
            };
            let mut whole = Vec::new();
            for c in chunks {
                match c {
                    Some(bytes) => whole.extend_from_slice(&bytes),
                    None => {
                        meter.on_failed_attempt(whole.len());
                        inbox.fail(dst, format!("page {seq}: frame map missing chunks"));
                        return;
                    }
                }
            }
            match SealedPage::from_bytes(&whole) {
                Ok(page) => {
                    meter.on_delivered(whole.len());
                    inbox.deliver(dst, seq, page);
                }
                Err(e) => {
                    // A torn page never reaches the inbox.
                    meter.on_failed_attempt(whole.len());
                    inbox.fail(dst, format!("page {seq} reassembled torn: {e}"));
                }
            }
        }
    }
}

/// A flow-controlled streaming transport: pages are chunked into frames and
/// pushed through a bounded channel to a demux thread that reassembles and
/// delivers them while the sender moves on — shuffles overlap with the
/// compute that produces the next pages instead of barriering per page.
pub struct StreamTransport {
    inbox: Arc<Inbox>,
    config: StreamConfig,
    tx: crossbeam_channel::Sender<Frame>,
    epoch: Arc<AtomicU64>,
    demux: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl StreamTransport {
    /// Spawns the demux thread and returns the transport.
    pub fn new(meter: Arc<TransportMeter>, config: StreamConfig) -> Self {
        let (tx, rx) = crossbeam_channel::bounded::<Frame>(config.frames_in_flight);
        let inbox = Arc::new(Inbox::new());
        let epoch = Arc::new(AtomicU64::new(0));
        let demux = {
            let inbox = inbox.clone();
            let epoch = epoch.clone();
            std::thread::Builder::new()
                .name(format!("pc-transport-demux-{}", unique_suffix()))
                .spawn(move || {
                    let mut reasm = Reassembler::new();
                    while let Ok(frame) = rx.recv() {
                        match frame {
                            Frame::Shutdown => break,
                            Frame::Wire(bytes) => {
                                let now = epoch.load(Ordering::Acquire);
                                match wire::decode(&bytes) {
                                    Ok(Decoded::Frame { frame, .. }) => {
                                        if frame.kind != FrameKind::Data {
                                            continue;
                                        }
                                        if frame.epoch != now {
                                            // A stale frame from an aborted
                                            // stage attempt: drop it, and any
                                            // partial pages from dead epochs.
                                            reasm.retain_epoch(now);
                                            continue;
                                        }
                                        reasm.accept(frame, &meter, &inbox);
                                    }
                                    Ok(Decoded::Corrupt { consumed, .. }) => {
                                        // Checksum reject: the attempt is
                                        // wire waste; a retransmitted clean
                                        // copy (or stage replay) recovers.
                                        meter.on_failed_attempt(consumed);
                                    }
                                    Ok(Decoded::Need) | Err(_) => {
                                        // A channel message is exactly one
                                        // frame, so a short or unparseable
                                        // message is broken framing; the
                                        // loss surfaces at collect.
                                        meter.on_failed_attempt(bytes.len());
                                    }
                                }
                            }
                        }
                    }
                })
                .expect("spawn transport demux thread")
        };
        StreamTransport {
            inbox,
            config,
            tx,
            epoch,
            demux: Mutex::new(Some(demux)),
        }
    }

    /// Pushes one encoded frame into the bounded channel (the flow-control
    /// window), honoring the send deadline.
    fn push(&self, dst: NodeId, encoded: Vec<u8>) -> PcResult<()> {
        self.tx
            .send_timeout(Frame::Wire(encoded), self.config.send_deadline)
            .map_err(|e| {
                PcError::Transport(match e {
                    crossbeam_channel::SendTimeoutError::Timeout(_) => format!(
                        "send to {} exceeded the {:?} deadline (window stalled)",
                        node_name(dst),
                        self.config.send_deadline
                    ),
                    crossbeam_channel::SendTimeoutError::Disconnected(_) => {
                        "transport demux thread is gone".to_string()
                    }
                })
            })
    }
}

impl Transport for StreamTransport {
    fn name(&self) -> &'static str {
        "stream"
    }

    fn send(&self, src: NodeId, dst: NodeId, page: &SealedPage) -> PcResult<()> {
        let bytes = page.to_bytes();
        let seq = self.inbox.expect(dst);
        let epoch = self.epoch.load(Ordering::Acquire);
        for frame in encode_page_frames(epoch, src, dst, seq, &bytes, self.config.chunk_bytes) {
            self.push(dst, frame)?;
        }
        Ok(())
    }

    fn collect(&self, dst: NodeId) -> PcResult<Vec<SealedPage>> {
        self.inbox
            .collect(dst, Some(self.config.collect_deadline), None)
    }

    fn send_corrupted(
        &self,
        src: NodeId,
        dst: NodeId,
        page: &SealedPage,
        flip_seed: u64,
        retransmit: bool,
    ) -> PcResult<()> {
        let bytes = page.to_bytes();
        let seq = self.inbox.expect(dst);
        let epoch = self.epoch.load(Ordering::Acquire);
        let frames = encode_page_frames(epoch, src, dst, seq, &bytes, self.config.chunk_bytes);
        let victim = (mix(flip_seed, frames.len() as u64, 0xC0F) as usize) % frames.len();
        for (i, frame) in frames.into_iter().enumerate() {
            if i == victim {
                let mut mangled = frame.clone();
                wire::flip_payload_bit(&mut mangled, flip_seed);
                self.push(dst, mangled)?;
                if !retransmit {
                    continue;
                }
            }
            self.push(dst, frame)?;
        }
        Ok(())
    }

    fn reset(&self) {
        // New epoch first, so frames still in the channel are recognizably
        // stale by the time the inbox is cleared.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.inbox.reset();
    }
}

impl Drop for StreamTransport {
    fn drop(&mut self) {
        let _ = self.tx.send(Frame::Shutdown);
        if let Some(h) = self.demux.lock().expect("demux handle poisoned").take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------- tcp

/// Tuning for [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Frame payload size a sealed page is chunked into.
    pub chunk_bytes: usize,
    /// Per-socket write deadline: how long a sender may stay blocked on a
    /// full socket buffer before the link counts as failed.
    pub send_deadline: Duration,
    /// Collect deadline: the backstop failure detector when heartbeats are
    /// still within budget.
    pub collect_deadline: Duration,
    /// How often each worker endpoint beats at the master.
    pub heartbeat_interval: Duration,
    /// Missed beats before the master marks a worker suspect.
    pub suspect_after: u32,
    /// First reconnect delay; doubles per attempt.
    pub reconnect_base: Duration,
    /// Ceiling on the exponential reconnect delay.
    pub reconnect_cap: Duration,
    /// Data-path reconnect attempts before a send fails with a typed
    /// transport error (heartbeat endpoints keep dialing at the cap).
    pub reconnect_attempts: u32,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            chunk_bytes: 4 << 10,
            send_deadline: Duration::from_secs(5),
            collect_deadline: Duration::from_secs(10),
            heartbeat_interval: Duration::from_millis(100),
            suspect_after: 5,
            reconnect_base: Duration::from_millis(10),
            reconnect_cap: Duration::from_millis(250),
            reconnect_attempts: 5,
            jitter_seed: 0,
        }
    }
}

impl TcpConfig {
    /// Maps the stream transport's knobs onto the TCP wire — how the
    /// `PC_WIRE=tcp` override reroutes stream-configured tests over real
    /// sockets without touching them.
    pub fn from_stream(cfg: &StreamConfig) -> TcpConfig {
        TcpConfig {
            chunk_bytes: cfg.chunk_bytes,
            send_deadline: cfg.send_deadline,
            collect_deadline: cfg.collect_deadline,
            ..TcpConfig::default()
        }
    }
}

/// Jittered, capped exponential backoff: attempt 0 waits about the base,
/// each retry doubles, the cap bounds it, and a seed-deterministic jitter
/// (up to a quarter of the delay) keeps reconnect storms from
/// synchronizing.
fn backoff_delay(cfg: &TcpConfig, attempt: u32, salt: u64) -> Duration {
    let exp = cfg.reconnect_base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(cfg.reconnect_cap).max(Duration::from_millis(1));
    let span = (capped.as_millis() as u64 / 4).max(1);
    let jitter = mix(cfg.jitter_seed, attempt as u64, salt) % span;
    capped + Duration::from_millis(jitter)
}

struct BeatState {
    last_beat: Instant,
    missed: u32,
    suspect: bool,
}

/// Master-side liveness board: the poll loop records beats, the monitor
/// thread advances missed-beat counts, collects consult the suspect set.
struct BeatBoard {
    state: Mutex<Vec<BeatState>>,
}

impl BeatBoard {
    fn new(workers: usize) -> Self {
        BeatBoard {
            state: Mutex::new(
                (0..workers)
                    .map(|_| BeatState {
                        last_beat: Instant::now(),
                        missed: 0,
                        suspect: false,
                    })
                    .collect(),
            ),
        }
    }

    /// A beat arrived from worker `w`: it is alive, whatever we suspected.
    fn record(&self, w: usize) {
        let mut s = self.state.lock().expect("beat board poisoned");
        if let Some(b) = s.get_mut(w) {
            b.last_beat = Instant::now();
            b.missed = 0;
            b.suspect = false;
        }
    }

    /// One monitor sweep: counts beats that failed to arrive on schedule
    /// (with half an interval of grace) and promotes quiet workers to
    /// suspect once `suspect_after` beats are missing.
    fn tick(&self, interval: Duration, suspect_after: u32, meter: &TransportMeter) {
        let mut s = self.state.lock().expect("beat board poisoned");
        for b in s.iter_mut() {
            let due = interval * (b.missed + 1) + interval / 2;
            if b.last_beat.elapsed() >= due {
                b.missed += 1;
                meter.on_heartbeat_missed();
                if b.missed >= suspect_after {
                    b.suspect = true;
                }
            }
        }
    }

    fn suspects(&self) -> Vec<NodeId> {
        let s = self.state.lock().expect("beat board poisoned");
        s.iter()
            .enumerate()
            .filter(|(_, b)| b.suspect)
            .map(|(w, _)| w)
            .collect()
    }

    fn first_suspect(&self) -> Option<NodeId> {
        self.suspects().into_iter().next()
    }

    /// Worker `w` restarted: forgive its missed beats.
    fn revive(&self, w: usize) {
        self.record(w);
    }
}

type ConnSlot = Arc<Mutex<Option<std::net::TcpStream>>>;

/// Sealed pages over real `std::net` TCP sockets.
///
/// Every node (each worker plus the master) owns a loopback listener. A
/// `send(src, dst, ..)` writes checksummed wire frames on a pooled
/// src→dst connection — re-dialed with bounded, jittered exponential
/// backoff when the link drops. One poll-loop thread (the vendored `mio`
/// shim) services every listener and inbound connection: it decodes
/// frames, reassembles and validates pages into the shared inbox, and
/// records worker heartbeats. A monitor thread turns missed beats into
/// suspicion; a collect blocked on a suspect worker fails fast with
/// [`PcError::WorkerDead`] instead of waiting out the collect deadline,
/// and stage replay takes it from there.
pub struct TcpTransport {
    inbox: Arc<Inbox>,
    config: TcpConfig,
    meter: Arc<TransportMeter>,
    epoch: Arc<AtomicU64>,
    workers: usize,
    addrs: Vec<SocketAddr>,
    conns: Mutex<HashMap<(NodeId, NodeId), ConnSlot>>,
    beats: Arc<BeatBoard>,
    alive: Arc<Vec<AtomicBool>>,
    shutdown: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpTransport {
    /// Binds one listener per node, spawns the poll loop, the heartbeat
    /// monitor, and one heartbeat endpoint per worker.
    pub fn new(meter: Arc<TransportMeter>, config: TcpConfig, workers: usize) -> PcResult<Self> {
        let workers = workers.max(1);
        let io_err = |what: &str, e: std::io::Error| {
            PcError::Transport(format!("tcp transport {what}: {e}"))
        };
        // Listener slots: worker w at index w, the master at index
        // `workers`.
        let mut listeners = Vec::with_capacity(workers + 1);
        let mut addrs = Vec::with_capacity(workers + 1);
        for _ in 0..=workers {
            let l = mio::net::TcpListener::bind("127.0.0.1:0".parse().expect("loopback addr"))
                .map_err(|e| io_err("bind", e))?;
            addrs.push(l.local_addr().map_err(|e| io_err("local_addr", e))?);
            listeners.push(l);
        }
        let inbox = Arc::new(Inbox::new());
        let epoch = Arc::new(AtomicU64::new(0));
        let beats = Arc::new(BeatBoard::new(workers));
        let alive: Arc<Vec<AtomicBool>> =
            Arc::new((0..workers).map(|_| AtomicBool::new(true)).collect());
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        // --- the poll loop: all inbound traffic, one thread ---
        {
            let inbox = inbox.clone();
            let meter = meter.clone();
            let epoch = epoch.clone();
            let beats = beats.clone();
            let shutdown = shutdown.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pc-tcp-poll-{}", unique_suffix()))
                    .spawn(move || {
                        poll_loop(listeners, workers, inbox, meter, epoch, beats, shutdown)
                    })
                    .expect("spawn tcp poll loop"),
            );
        }

        // --- the liveness monitor ---
        {
            let meter = meter.clone();
            let beats = beats.clone();
            let shutdown = shutdown.clone();
            let interval = config.heartbeat_interval;
            let suspect_after = config.suspect_after;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pc-tcp-monitor-{}", unique_suffix()))
                    .spawn(move || {
                        while !shutdown.load(Ordering::Relaxed) {
                            beats.tick(interval, suspect_after, &meter);
                            std::thread::sleep(interval / 2);
                        }
                    })
                    .expect("spawn tcp liveness monitor"),
            );
        }

        // --- one heartbeat endpoint per worker ---
        for w in 0..workers {
            let meter = meter.clone();
            let alive = alive.clone();
            let shutdown = shutdown.clone();
            let config2 = config.clone();
            let master_addr = addrs[workers];
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pc-tcp-beat-{w}-{}", unique_suffix()))
                    .spawn(move || {
                        heartbeat_endpoint(w, master_addr, config2, meter, alive, shutdown)
                    })
                    .expect("spawn tcp heartbeat endpoint"),
            );
        }

        Ok(TcpTransport {
            inbox,
            config,
            meter,
            epoch,
            workers,
            addrs,
            conns: Mutex::new(HashMap::new()),
            beats,
            alive,
            shutdown,
            threads: Mutex::new(threads),
        })
    }

    fn addr_of(&self, n: NodeId) -> SocketAddr {
        if n == MASTER {
            self.addrs[self.workers]
        } else {
            self.addrs[n]
        }
    }

    /// Writes a page's frames on the pooled src→dst connection, re-dialing
    /// with bounded exponential backoff (jittered, capped, metered) when
    /// the link is down or drops mid-write.
    fn write_frames(&self, src: NodeId, dst: NodeId, frames: &[Vec<u8>]) -> PcResult<()> {
        let slot: ConnSlot = {
            let mut conns = self.conns.lock().expect("conn pool poisoned");
            conns.entry((src, dst)).or_default().clone()
        };
        let mut conn = slot.lock().expect("conn slot poisoned");
        let mut attempt = 0u32;
        let mut had_failure = false;
        loop {
            if conn.is_none() {
                match std::net::TcpStream::connect(self.addr_of(dst)) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_write_timeout(Some(self.config.send_deadline));
                        if had_failure {
                            self.meter.on_reconnect();
                        }
                        *conn = Some(s);
                    }
                    Err(e) => {
                        had_failure = true;
                        attempt += 1;
                        if attempt > self.config.reconnect_attempts {
                            return Err(PcError::Transport(format!(
                                "connect to {} failed after {} backoff attempts: {e}",
                                node_name(dst),
                                self.config.reconnect_attempts
                            )));
                        }
                        std::thread::sleep(backoff_delay(&self.config, attempt - 1, dst as u64));
                        continue;
                    }
                }
            }
            let stream = conn.as_mut().expect("connection just ensured");
            let wrote = frames
                .iter()
                .try_for_each(|f| stream.write_all(f))
                .and_then(|()| stream.flush());
            match wrote {
                Ok(()) => return Ok(()),
                Err(e) => {
                    // The link dropped mid-page: reconnect and resend every
                    // frame. Duplicate chunks are idempotent on the
                    // receiver (same seq/idx overwrites), and a frame torn
                    // by the dead connection is caught by its checksum or
                    // the truncation check.
                    *conn = None;
                    had_failure = true;
                    attempt += 1;
                    if attempt > self.config.reconnect_attempts {
                        return Err(PcError::Transport(format!(
                            "send to {} failed after {} backoff attempts: {e}",
                            node_name(dst),
                            self.config.reconnect_attempts
                        )));
                    }
                    std::thread::sleep(backoff_delay(&self.config, attempt - 1, dst as u64));
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn send(&self, src: NodeId, dst: NodeId, page: &SealedPage) -> PcResult<()> {
        let bytes = page.to_bytes();
        let seq = self.inbox.expect(dst);
        let epoch = self.epoch.load(Ordering::Acquire);
        let frames = encode_page_frames(epoch, src, dst, seq, &bytes, self.config.chunk_bytes);
        self.write_frames(src, dst, &frames)
    }

    fn collect(&self, dst: NodeId) -> PcResult<Vec<SealedPage>> {
        let probe = || self.beats.first_suspect().map(PcError::WorkerDead);
        self.inbox
            .collect(dst, Some(self.config.collect_deadline), Some(&probe))
    }

    fn reset(&self) {
        // New epoch first, so frames still buffered in sockets are
        // recognizably stale by the time the inbox is cleared.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.inbox.reset();
    }

    fn send_corrupted(
        &self,
        src: NodeId,
        dst: NodeId,
        page: &SealedPage,
        flip_seed: u64,
        retransmit: bool,
    ) -> PcResult<()> {
        let bytes = page.to_bytes();
        let seq = self.inbox.expect(dst);
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut frames = encode_page_frames(epoch, src, dst, seq, &bytes, self.config.chunk_bytes);
        let victim = (mix(flip_seed, frames.len() as u64, 0xC0F) as usize) % frames.len();
        let clean = frames[victim].clone();
        wire::flip_payload_bit(&mut frames[victim], flip_seed);
        if retransmit {
            frames.insert(victim + 1, clean);
        }
        self.write_frames(src, dst, &frames)
    }

    fn kill(&self, w: NodeId) {
        if w < self.workers {
            self.alive[w].store(false, Ordering::Relaxed);
        }
        // Sever every live connection touching the dead node; senders will
        // re-dial (with backoff) once it is revived.
        let conns = self.conns.lock().expect("conn pool poisoned");
        for ((src, dst), slot) in conns.iter() {
            if *src == w || *dst == w {
                slot.lock().expect("conn slot poisoned").take();
            }
        }
    }

    fn revive(&self, w: NodeId) {
        if w < self.workers {
            self.alive[w].store(true, Ordering::Relaxed);
            self.beats.revive(w);
        }
    }

    fn suspects(&self) -> Vec<NodeId> {
        self.beats.suspects()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for h in self.threads.lock().expect("tcp threads poisoned").drain(..) {
            let _ = h.join();
        }
    }
}

struct TcpConn {
    stream: mio::net::TcpStream,
    buf: Vec<u8>,
}

/// The receive side: accepts connections on every node's listener, decodes
/// frames, reassembles pages, and records heartbeats — one thread for the
/// whole cluster.
fn poll_loop(
    mut listeners: Vec<mio::net::TcpListener>,
    workers: usize,
    inbox: Arc<Inbox>,
    meter: Arc<TransportMeter>,
    epoch: Arc<AtomicU64>,
    beats: Arc<BeatBoard>,
    shutdown: Arc<AtomicBool>,
) {
    let poll = match mio::Poll::new() {
        Ok(p) => p,
        Err(_) => return,
    };
    for (i, l) in listeners.iter_mut().enumerate() {
        let _ = poll
            .registry()
            .register(l, mio::Token(i), mio::Interest::READABLE);
    }
    let mut conns: HashMap<usize, TcpConn> = HashMap::new();
    let mut next_token = workers + 2;
    let mut reasm = Reassembler::new();
    let mut events = mio::Events::with_capacity(64);
    let mut scratch = [0u8; 64 << 10];
    while !shutdown.load(Ordering::Relaxed) {
        if poll
            .poll(&mut events, Some(Duration::from_millis(10)))
            .is_err()
        {
            return;
        }
        for ev in &events {
            let t = ev.token().0;
            if t <= workers {
                // A listener: accept everything waiting.
                while let Ok((mut stream, _)) = listeners[t].accept() {
                    let token = next_token;
                    next_token += 1;
                    if poll
                        .registry()
                        .register(&mut stream, mio::Token(token), mio::Interest::READABLE)
                        .is_ok()
                    {
                        conns.insert(
                            token,
                            TcpConn {
                                stream,
                                buf: Vec::new(),
                            },
                        );
                    }
                }
                continue;
            }
            let Some(conn) = conns.get_mut(&t) else {
                continue;
            };
            let mut closed = false;
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        closed = true;
                        break;
                    }
                    Ok(n) => conn.buf.extend_from_slice(&scratch[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        closed = true;
                        break;
                    }
                }
            }
            let framing_broken = drain_frames(conn, &inbox, &meter, &epoch, &beats, &mut reasm);
            if closed && !framing_broken && !conn.buf.is_empty() {
                // The peer vanished mid-frame: a truncated page. Surface a
                // typed error on the destination if the stranded header
                // still names one; either way the bytes were waste.
                meter.on_failed_attempt(conn.buf.len());
                if let Some(dst) = truncated_dst(&conn.buf) {
                    inbox.fail(
                        dst,
                        format!(
                            "connection closed mid-frame ({} bytes stranded)",
                            conn.buf.len()
                        ),
                    );
                }
            }
            if closed || framing_broken {
                let mut dead = conns.remove(&t).expect("conn present");
                let _ = poll.registry().deregister(&mut dead.stream);
            }
        }
    }
}

/// Decodes every complete frame buffered on a connection. Returns true when
/// the framing itself broke (the connection must be dropped).
fn drain_frames(
    conn: &mut TcpConn,
    inbox: &Inbox,
    meter: &TransportMeter,
    epoch: &AtomicU64,
    beats: &BeatBoard,
    reasm: &mut Reassembler,
) -> bool {
    let mut consumed_total = 0;
    let broken = loop {
        match wire::decode(&conn.buf[consumed_total..]) {
            Ok(Decoded::Need) => break false,
            Ok(Decoded::Frame { frame, consumed }) => {
                consumed_total += consumed;
                match frame.kind {
                    FrameKind::Heartbeat => {
                        let src = frame.src as usize;
                        beats.record(src);
                    }
                    FrameKind::Data => {
                        let now = epoch.load(Ordering::Acquire);
                        if frame.epoch != now {
                            reasm.retain_epoch(now);
                            continue;
                        }
                        reasm.accept(frame, meter, inbox);
                    }
                }
            }
            Ok(Decoded::Corrupt { consumed, .. }) => {
                // Checksum reject: skip exactly this frame; framing holds.
                meter.on_failed_attempt(consumed);
                consumed_total += consumed;
            }
            Err(_) => {
                // Frame boundaries can no longer be trusted: everything
                // still buffered is waste and the connection dies. The
                // stranded destination (if its header survives) gets a
                // typed error instead of a deadline stall.
                let rest = conn.buf.len() - consumed_total;
                meter.on_failed_attempt(rest);
                if let Some(dst) = truncated_dst(&conn.buf[consumed_total..]) {
                    inbox.fail(
                        dst,
                        "wire framing broken on an inbound connection".to_string(),
                    );
                }
                break true;
            }
        }
    };
    conn.buf.drain(..consumed_total);
    broken
}

/// Best-effort destination of a stranded partial frame (magic must hold and
/// the header must reach the dst field).
fn truncated_dst(buf: &[u8]) -> Option<NodeId> {
    if buf.len() >= 29 {
        let magic = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        if magic == wire::MAGIC {
            let dst = u64::from_le_bytes(buf[21..29].try_into().ok()?);
            return Some(dst as usize);
        }
    }
    None
}

/// One worker's beating endpoint: dials the master and sends a heartbeat
/// frame every interval, re-dialing with jittered exponential backoff when
/// the link fails, and going silent while the worker is killed.
fn heartbeat_endpoint(
    w: usize,
    master_addr: SocketAddr,
    config: TcpConfig,
    meter: Arc<TransportMeter>,
    alive: Arc<Vec<AtomicBool>>,
    shutdown: Arc<AtomicBool>,
) {
    let mut beat: u64 = 0;
    let mut conn: Option<std::net::TcpStream> = None;
    let mut failed_attempts: u32 = 0;
    let mut had_failure = false;
    let nap = |d: Duration| {
        // Sleep in slices so kill/shutdown bite quickly.
        let step = Duration::from_millis(5);
        let mut left = d;
        while left > Duration::ZERO && !shutdown.load(Ordering::Relaxed) {
            let s = left.min(step);
            std::thread::sleep(s);
            left = left.saturating_sub(s);
        }
    };
    while !shutdown.load(Ordering::Relaxed) {
        if !alive[w].load(Ordering::Relaxed) {
            if conn.take().is_some() {
                had_failure = true;
            }
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        if conn.is_none() {
            match std::net::TcpStream::connect(master_addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_write_timeout(Some(config.send_deadline));
                    if had_failure {
                        meter.on_reconnect();
                        had_failure = false;
                    }
                    failed_attempts = 0;
                    conn = Some(s);
                }
                Err(_) => {
                    had_failure = true;
                    nap(backoff_delay(&config, failed_attempts, w as u64));
                    failed_attempts = failed_attempts.saturating_add(1);
                    continue;
                }
            }
        }
        let frame = WireFrame::heartbeat(w as u64, MASTER as u64, beat).encode();
        beat += 1;
        let ok = conn
            .as_mut()
            .map(|s| s.write_all(&frame).and_then(|()| s.flush()).is_ok())
            .unwrap_or(false);
        if !ok {
            conn = None;
            had_failure = true;
            continue;
        }
        nap(config.heartbeat_interval);
    }
}

// ---------------------------------------------------------------- faults

/// Fault categories a [`FaultyTransport`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A wire-level loss of a send attempt (retried, or surfaced).
    Drop,
    /// A delivery delay of a few milliseconds.
    Delay,
    /// Two consecutive sends to the same destination swap on the wire.
    Reorder,
    /// A seeded bit flips somewhere in one frame's payload on the wire.
    /// The receiver's checksum rejects the frame; with retries on, the
    /// link retransmits a clean copy, otherwise the loss surfaces as a
    /// typed transport error and stage replay recovers.
    Corrupt,
    /// A worker's backend dies at a scheduled send index; every later send
    /// touching it fails until recovery revives it.
    WorkerDeath,
}

impl FaultKind {
    fn tag(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
            FaultKind::Corrupt => "corrupt",
            FaultKind::WorkerDeath => "worker-death",
        }
    }
}

/// A reproducible fault schedule: everything the [`FaultyTransport`]
/// injects is a pure function of this spec, so a failing chaos seed is a
/// one-line repro.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Seed driving every per-send decision.
    pub seed: u64,
    /// Which fault kinds are enabled.
    pub kinds: Vec<FaultKind>,
    /// Per-send fault probability, in 256ths, for drop/delay/reorder.
    pub rate: u16,
    /// Wire drops injected per faulted send are capped here; the next
    /// attempt always succeeds, so retries are guaranteed to converge.
    pub max_drops_per_send: u32,
    /// Retry dropped attempts in-place. When false a drop surfaces as a
    /// transport error and stage replay recovers instead.
    pub retries: bool,
    /// Global send index at which the victim dies (derived from the seed
    /// when `WorkerDeath` is enabled and this is `None`).
    pub death_at: Option<u64>,
    /// The worker that dies (derived from the seed when `None`).
    pub victim: Option<NodeId>,
    /// Budget of volatile faults (drop/delay/reorder) injected over the
    /// transport's lifetime; once spent, the schedule goes quiet. Lets a
    /// test script *exactly N faults* deterministically.
    pub max_faults: u64,
}

impl FaultSpec {
    /// A schedule over the given kinds, everything else derived from seed.
    pub fn seeded(seed: u64, kinds: &[FaultKind]) -> Self {
        FaultSpec {
            seed,
            kinds: kinds.to_vec(),
            rate: 48,
            max_drops_per_send: 2,
            retries: true,
            death_at: None,
            victim: None,
            max_faults: u64::MAX,
        }
    }
}

/// SplitMix64: a stateless, order-independent hash of (seed, send index,
/// salt) — the same send index always draws the same fault decision, so
/// schedules replay exactly from the seed.
fn mix(seed: u64, n: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-destination reorder bookkeeping: `perm[inner_idx]` is the logical
/// send index of the page handed to the inner transport as its
/// `inner_idx`-th send this round. Collect un-permutes with it, restoring
/// logical order no matter what the schedule swapped.
#[derive(Default)]
struct ChanState {
    perm: Vec<usize>,
    next_logical: usize,
    holdback: Option<(usize, Vec<u8>)>,
}

/// Decorates any [`Transport`] with seed-driven fault injection. Despite
/// the chaos underneath, the decorated transport still satisfies the full
/// delivery contract (exactly-once, order-restored) whenever `retries` is
/// on and no death fires — and recovery restores it end-to-end otherwise.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    spec: FaultSpec,
    workers: usize,
    meter: Arc<TransportMeter>,
    armed: AtomicBool,
    sends: AtomicU64,
    faults_injected: AtomicU64,
    death_fired: AtomicBool,
    dead: Mutex<HashSet<NodeId>>,
    chans: Mutex<HashMap<NodeId, ChanState>>,
}

impl FaultyTransport {
    /// Wraps `inner`, injecting faults over a cluster of `workers` nodes.
    pub fn new(
        inner: Arc<dyn Transport>,
        meter: Arc<TransportMeter>,
        spec: FaultSpec,
        workers: usize,
    ) -> Self {
        FaultyTransport {
            inner,
            spec,
            workers: workers.max(1),
            meter,
            armed: AtomicBool::new(false),
            sends: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            death_fired: AtomicBool::new(false),
            dead: Mutex::new(HashSet::new()),
            chans: Mutex::new(HashMap::new()),
        }
    }

    fn death_point(&self) -> Option<(u64, NodeId)> {
        if !self.spec.kinds.contains(&FaultKind::WorkerDeath) {
            return None;
        }
        let at = self
            .spec
            .death_at
            .unwrap_or_else(|| mix(self.spec.seed, 0, 0xDEAD) % 24);
        let victim = self
            .spec
            .victim
            .unwrap_or_else(|| (mix(self.spec.seed, 1, 0xDEAD) as usize) % self.workers);
        Some((at, victim))
    }

    /// The volatile fault (if any) scheduled for global send `n`.
    fn volatile_fault(&self, n: u64) -> Option<FaultKind> {
        let volatile: Vec<FaultKind> = self
            .spec
            .kinds
            .iter()
            .copied()
            .filter(|k| *k != FaultKind::WorkerDeath)
            .collect();
        if volatile.is_empty() {
            return None;
        }
        let h = mix(self.spec.seed, n, 0xFA17);
        if (h % 256) as u16 >= self.spec.rate {
            return None;
        }
        Some(volatile[(h >> 32) as usize % volatile.len()])
    }

    /// Consumes one unit of the volatile-fault budget; `false` once spent.
    fn take_fault_budget(&self) -> bool {
        let max = self.spec.max_faults;
        self.faults_injected
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                (c < max).then_some(c + 1)
            })
            .is_ok()
    }

    fn check_alive(&self, src: NodeId, dst: NodeId) -> PcResult<()> {
        let dead = self.dead.lock().expect("dead set poisoned");
        if dead.contains(&dst) {
            return Err(PcError::WorkerDead(dst));
        }
        if dead.contains(&src) {
            return Err(PcError::WorkerDead(src));
        }
        Ok(())
    }

    /// Deliver to the inner transport, recording the logical index in the
    /// destination's permutation.
    fn deliver(&self, src: NodeId, dst: NodeId, page: &SealedPage, logical: usize) -> PcResult<()> {
        self.inner.send(src, dst, page)?;
        let mut chans = self.chans.lock().expect("chan state poisoned");
        chans.entry(dst).or_default().perm.push(logical);
        Ok(())
    }
}

impl Transport for FaultyTransport {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn send(&self, src: NodeId, dst: NodeId, page: &SealedPage) -> PcResult<()> {
        let armed = self.armed.load(Ordering::Relaxed);
        // Assign the logical index first: order restoration is defined by
        // call order at this boundary, not by what survives the wire.
        let logical = {
            let mut chans = self.chans.lock().expect("chan state poisoned");
            let c = chans.entry(dst).or_default();
            let l = c.next_logical;
            c.next_logical += 1;
            l
        };
        if armed {
            // The schedule's send counter only ticks while armed, so the
            // seed describes the *job's* traffic, not whatever data loading
            // happened to precede it.
            let n = self.sends.fetch_add(1, Ordering::Relaxed);
            if let Some((at, victim)) = self.death_point() {
                if n >= at && !self.death_fired.swap(true, Ordering::Relaxed) {
                    self.dead.lock().expect("dead set poisoned").insert(victim);
                    // Let the wire see the death too: a real-socket inner
                    // transport severs the victim's connections and stops
                    // its heartbeats, so the master's liveness monitor
                    // detects the crash the same way it would a real one.
                    self.inner.kill(victim);
                }
            }
            self.check_alive(src, dst)?;
            let fault = self.volatile_fault(n).filter(|_| self.take_fault_budget());
            match fault {
                Some(FaultKind::Delay) => {
                    std::thread::sleep(Duration::from_millis(1 + mix(self.spec.seed, n, 1) % 4));
                }
                Some(FaultKind::Drop) => {
                    let cap = self.spec.max_drops_per_send.max(1) as u64;
                    let drops = 1 + mix(self.spec.seed, n, 2) % cap;
                    let len = page.to_bytes().len();
                    for _ in 0..drops {
                        self.meter.on_failed_attempt(len);
                    }
                    if !self.spec.retries {
                        return Err(PcError::Transport(format!(
                            "send #{n} to {} dropped on the wire (retries disabled)",
                            node_name(dst)
                        )));
                    }
                    // Retried in place: fall through to a clean delivery.
                }
                Some(FaultKind::Reorder) => {
                    let mut chans = self.chans.lock().expect("chan state poisoned");
                    let c = chans.entry(dst).or_default();
                    if c.holdback.is_none() {
                        // Stash this page; it goes out after the next send
                        // to the same destination (or at collect).
                        c.holdback = Some((logical, page.to_bytes()));
                        return Ok(());
                    }
                    // A stash is already pending: deliver normally below.
                }
                Some(FaultKind::Corrupt) => {
                    let flip = mix(self.spec.seed, n, 3);
                    if self.spec.retries {
                        // One logical delivery whose first wire copy is
                        // mangled and whose clean copy follows — the
                        // link-level retransmit. The receiver's checksum
                        // rejects the bad frame and meters the waste.
                        self.inner.send_corrupted(src, dst, page, flip, true)?;
                        let mut chans = self.chans.lock().expect("chan state poisoned");
                        chans.entry(dst).or_default().perm.push(logical);
                        return Ok(());
                    }
                    // No retransmission: the mangled frame goes out, dies
                    // at the receiver's checksum, and the sender surfaces
                    // a typed error for stage replay to recover from.
                    let _ = self.inner.send_corrupted(src, dst, page, flip, false);
                    return Err(PcError::Transport(format!(
                        "send #{n} to {} corrupted on the wire (no retransmission)",
                        node_name(dst)
                    )));
                }
                _ => {}
            }
        }
        self.deliver(src, dst, page, logical)?;
        // Flush a pending stash *after* the newer page: that is the swap.
        let stashed = {
            let mut chans = self.chans.lock().expect("chan state poisoned");
            chans.entry(dst).or_default().holdback.take()
        };
        if let Some((held_logical, bytes)) = stashed {
            let held = SealedPage::from_bytes(&bytes)?;
            self.deliver(src, dst, &held, held_logical)?;
        }
        Ok(())
    }

    fn collect(&self, dst: NodeId) -> PcResult<Vec<SealedPage>> {
        // Flush any stash that never saw a follow-up send.
        let stashed = {
            let mut chans = self.chans.lock().expect("chan state poisoned");
            chans.entry(dst).or_default().holdback.take()
        };
        if let Some((held_logical, bytes)) = stashed {
            self.check_alive(MASTER, dst)?;
            let held = SealedPage::from_bytes(&bytes)?;
            self.deliver(MASTER, dst, &held, held_logical)?;
        }
        let inner_order = self.inner.collect(dst)?;
        let perm = {
            let mut chans = self.chans.lock().expect("chan state poisoned");
            chans.remove(&dst).unwrap_or_default().perm
        };
        if perm.len() != inner_order.len() {
            return Err(PcError::Transport(format!(
                "collect({}): {} pages delivered, {} sent",
                node_name(dst),
                inner_order.len(),
                perm.len()
            )));
        }
        // Un-permute: inner order → logical send order.
        let mut out: Vec<Option<SealedPage>> = (0..inner_order.len()).map(|_| None).collect();
        for (inner_idx, page) in inner_order.into_iter().enumerate() {
            out[perm[inner_idx]] = Some(page);
        }
        Ok(out
            .into_iter()
            .map(|p| p.expect("perm is a bijection"))
            .collect())
    }

    fn reset(&self) {
        self.chans.lock().expect("chan state poisoned").clear();
        self.inner.reset();
    }

    fn revive(&self, w: NodeId) {
        self.dead.lock().expect("dead set poisoned").remove(&w);
        self.inner.revive(w);
    }

    fn kill(&self, w: NodeId) {
        self.dead.lock().expect("dead set poisoned").insert(w);
        self.inner.kill(w);
    }

    fn suspects(&self) -> Vec<NodeId> {
        self.inner.suspects()
    }

    fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    fn fault_summary(&self) -> Option<String> {
        let kinds: Vec<&str> = self.spec.kinds.iter().map(|k| k.tag()).collect();
        let death = self
            .death_point()
            .map(|(at, v)| format!(" death@send{at}->worker{v}"))
            .unwrap_or_default();
        Some(format!(
            "seed={:#x} kinds=[{}] rate={}/256 max_drops={} retries={}{} over {}",
            self.spec.seed,
            kinds.join(","),
            self.spec.rate,
            self.spec.max_drops_per_send,
            self.spec.retries,
            death,
            self.inner.name()
        ))
    }
}

// ---------------------------------------------------------------- config

/// Declarative transport selection, carried by `ClusterConfig` so tests,
/// `repro faults`, and the chaos CI matrix can describe a transport stack
/// without touching construction code.
#[derive(Debug, Clone, Default)]
pub enum TransportKind {
    /// The synchronous in-process byte copy.
    #[default]
    Local,
    /// Chunked, flow-controlled streaming with a demux thread.
    Stream(StreamConfig),
    /// Real loopback TCP sockets with heartbeat liveness and backoff
    /// reconnection.
    Tcp(TcpConfig),
    /// Fault injection decorating another transport.
    Faulty {
        /// The transport actually moving bytes underneath.
        inner: Box<TransportKind>,
        /// The seed-driven schedule.
        spec: FaultSpec,
    },
}

impl TransportKind {
    /// Builds the transport stack, metering into `meter`, for a cluster of
    /// `workers` nodes.
    ///
    /// Setting `PC_WIRE=tcp` in the environment reroutes every `Stream`
    /// selection over real sockets (via [`TcpConfig::from_stream`]), which
    /// is how the chaos suite runs byte-identical against [`TcpTransport`]
    /// with zero test changes. `Local` stays in-process — it is the
    /// baseline the wire transports are compared to.
    pub fn build(
        &self,
        meter: Arc<TransportMeter>,
        workers: usize,
    ) -> PcResult<Arc<dyn Transport>> {
        let tcp_override = std::env::var("PC_WIRE")
            .map(|v| v == "tcp")
            .unwrap_or(false);
        Ok(match self {
            TransportKind::Local => Arc::new(LocalTransport::new(meter)),
            TransportKind::Stream(cfg) if tcp_override => Arc::new(TcpTransport::new(
                meter,
                TcpConfig::from_stream(cfg),
                workers,
            )?),
            TransportKind::Stream(cfg) => Arc::new(StreamTransport::new(meter, cfg.clone())),
            TransportKind::Tcp(cfg) => Arc::new(TcpTransport::new(meter, cfg.clone(), workers)?),
            TransportKind::Faulty { inner, spec } => {
                let base = inner.build(meter.clone(), workers)?;
                Arc::new(FaultyTransport::new(base, meter, spec.clone(), workers))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_lambda::SetWriter;
    use pc_object::{make_object, PcVec};

    fn page(tag: i64) -> SealedPage {
        let mut w = SetWriter::new(1 << 14);
        w.write_with(|| {
            let v = make_object::<PcVec<i64>>()?;
            for i in 0..32 {
                v.push(tag * 100 + i)?;
            }
            Ok(v.erase())
        })
        .unwrap();
        w.finish().unwrap().into_iter().next().unwrap()
    }

    fn tag_of(p: &SealedPage) -> i64 {
        let (_b, root) = p.open_view().unwrap();
        let objs = root
            .downcast::<PcVec<pc_object::Handle<pc_object::AnyObj>>>()
            .unwrap();
        let first = objs.iter().next().unwrap().erase();
        first.downcast::<PcVec<i64>>().unwrap().get(0) / 100
    }

    #[test]
    fn local_transport_delivers_in_order_and_meters() {
        let meter = Arc::new(TransportMeter::default());
        let t = LocalTransport::new(meter.clone());
        for i in 0..5 {
            t.send(MASTER, 1, &page(i)).unwrap();
        }
        let got = t.collect(1).unwrap();
        assert_eq!(got.len(), 5);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(tag_of(p), i as i64);
        }
        assert_eq!(meter.pages_shuffled(), 5);
        assert!(meter.bytes_shuffled() > 0);
        assert_eq!(meter.bytes_retransmitted(), 0);
    }

    #[test]
    fn stream_transport_reassembles_chunked_pages() {
        let meter = Arc::new(TransportMeter::default());
        let t = StreamTransport::new(
            meter.clone(),
            StreamConfig {
                chunk_bytes: 128, // force many frames per page
                frames_in_flight: 4,
                ..StreamConfig::default()
            },
        );
        let originals: Vec<SealedPage> = (0..6).map(page).collect();
        for (i, p) in originals.iter().enumerate() {
            t.send(0, i % 2, p).unwrap();
        }
        for dst in 0..2usize {
            let got = t.collect(dst).unwrap();
            assert_eq!(got.len(), 3);
            for (k, p) in got.iter().enumerate() {
                let expect = &originals[dst + 2 * k];
                assert_eq!(p.to_bytes(), expect.to_bytes(), "torn or misordered page");
            }
        }
        assert_eq!(meter.pages_shuffled(), 6);
    }

    #[test]
    fn faulty_reorder_is_invisible_after_collect() {
        let meter = Arc::new(TransportMeter::default());
        let inner: Arc<dyn Transport> = Arc::new(LocalTransport::new(meter.clone()));
        let t = FaultyTransport::new(
            inner,
            meter,
            FaultSpec {
                rate: 256, // reorder every send
                ..FaultSpec::seeded(7, &[FaultKind::Reorder])
            },
            3,
        );
        t.arm();
        for i in 0..7 {
            t.send(MASTER, 0, &page(i)).unwrap();
        }
        let got = t.collect(0).unwrap();
        assert_eq!(got.len(), 7);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(tag_of(p), i as i64, "order must be restored");
        }
    }

    #[test]
    fn faulty_drops_meter_retransmission_not_shuffle() {
        let meter = Arc::new(TransportMeter::default());
        let inner: Arc<dyn Transport> = Arc::new(LocalTransport::new(meter.clone()));
        let t = FaultyTransport::new(
            inner,
            meter.clone(),
            FaultSpec {
                rate: 256,
                ..FaultSpec::seeded(11, &[FaultKind::Drop])
            },
            3,
        );
        t.arm();
        for i in 0..4 {
            t.send(MASTER, 1, &page(i)).unwrap();
        }
        let got = t.collect(1).unwrap();
        assert_eq!(got.len(), 4, "every page still arrives exactly once");
        assert_eq!(meter.pages_shuffled(), 4);
        assert!(meter.sends_failed() > 0, "drops were injected");
        assert!(meter.bytes_retransmitted() > 0);
    }

    #[test]
    fn worker_death_fails_sends_until_revived() {
        let meter = Arc::new(TransportMeter::default());
        let inner: Arc<dyn Transport> = Arc::new(LocalTransport::new(meter.clone()));
        let t = FaultyTransport::new(
            inner,
            meter,
            FaultSpec {
                death_at: Some(2),
                victim: Some(1),
                ..FaultSpec::seeded(3, &[FaultKind::WorkerDeath])
            },
            3,
        );
        t.arm();
        t.send(MASTER, 1, &page(0)).unwrap();
        t.send(MASTER, 1, &page(1)).unwrap();
        assert_eq!(
            t.send(MASTER, 1, &page(2)),
            Err(PcError::WorkerDead(1)),
            "sends to the dead worker must fail"
        );
        assert_eq!(t.send(MASTER, 0, &page(3)), Ok(()), "other links stay up");
        t.reset();
        t.revive(1);
        t.send(MASTER, 1, &page(4)).unwrap();
        let got = t.collect(1).unwrap();
        assert_eq!(got.len(), 1, "reset discarded the aborted deliveries");
        assert_eq!(tag_of(&got[0]), 4);
    }

    #[test]
    fn meter_rollback_reclassifies_aborted_deliveries() {
        let meter = Arc::new(TransportMeter::default());
        let t = LocalTransport::new(meter.clone());
        t.send(MASTER, 0, &page(0)).unwrap();
        let snap = meter.checkpoint();
        t.send(MASTER, 0, &page(1)).unwrap();
        t.send(MASTER, 0, &page(2)).unwrap();
        let before = meter.bytes_shuffled();
        meter.rollback(snap);
        assert_eq!(meter.pages_shuffled(), 1);
        assert_eq!(meter.sends_failed(), 2);
        assert_eq!(
            meter.bytes_shuffled() + meter.bytes_retransmitted(),
            before,
            "rollback moves bytes, it never loses them"
        );
    }

    #[test]
    fn meter_rollback_never_touches_liveness_counters() {
        // Missed beats and re-dialed links are wire-level facts: they
        // happened no matter how the stage attempt ended, so checkpoint /
        // rollback must leave them monotone.
        let meter = Arc::new(TransportMeter::default());
        let t = LocalTransport::new(meter.clone());
        meter.on_heartbeat_missed();
        meter.on_reconnect();
        let snap = meter.checkpoint();
        t.send(MASTER, 0, &page(0)).unwrap();
        meter.on_heartbeat_missed();
        meter.on_heartbeat_missed();
        meter.on_reconnect();
        meter.rollback(snap);
        assert_eq!(meter.pages_shuffled(), 0, "delivery was rolled back");
        assert_eq!(
            meter.heartbeats_missed(),
            3,
            "missed beats survive rollback"
        );
        assert_eq!(meter.reconnects(), 2, "reconnects survive rollback");
    }

    #[test]
    fn backoff_delays_are_capped_and_grow() {
        let cfg = TcpConfig::default();
        let mut prev = Duration::ZERO;
        for attempt in 0..10 {
            let d = backoff_delay(&cfg, attempt, 1);
            assert!(
                d <= cfg.reconnect_cap + cfg.reconnect_cap / 4,
                "attempt {attempt}: {d:?} exceeds the jittered cap"
            );
            if attempt < 3 {
                assert!(d > prev, "early attempts must grow: {prev:?} -> {d:?}");
                prev = d;
            }
        }
        // Deterministic: the same (seed, attempt) always jitters the same.
        assert_eq!(backoff_delay(&cfg, 4, 7), backoff_delay(&cfg, 4, 7));
    }
}
