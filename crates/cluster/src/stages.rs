//! Distributed job stages (Appendix D).
//!
//! Every pipeline of the physical plan becomes a `PipelineJobStage` run on
//! all workers in parallel. Each worker runs the stage **morsel-driven**
//! (`pc_exec::run_stage_morsels`): its local pages are carved into
//! fixed-size morsels pulled by `exec.threads` work-stealing pipelining
//! threads, and the per-morsel outputs merge in morsel order so worker
//! output is byte-identical for every thread count. What happens to the
//! sink output depends on its kind:
//!
//! * **Output / Materialize** — pages stay on the producing worker: stored
//!   sets are distributed.
//! * **JoinBuild** — per-worker tables are sealed and **broadcast**: every
//!   worker receives every build page (the paper's broadcast join; chosen
//!   for build sides under the broadcast threshold — larger sides would
//!   hash-partition per D.3, a path this simulation routes through the same
//!   broadcast mechanics and reports in the stats).
//! * **AggProduce** — the two-stage distributed aggregation of D.2 /
//!   Figure 5: pipelining threads pre-aggregate into hash-partitioned map
//!   pages and push them through a zero-copy pointer queue to combining
//!   threads; combined pages are shuffled to each partition's owner; the
//!   owner's aggregation threads merge and materialize the result.

use crate::cluster::PcCluster;
use crate::transport::MASTER;
use pc_exec::{
    run_stage_morsels, ExecStats, JoinTable, MorselOutput, PipelineSpec, SharedTable, Sink,
};
use pc_lambda::{ErasedAgg, SetWriter, StageLibrary};
use pc_object::{PcError, PcResult, SealedPage};
use std::collections::HashMap;
use std::sync::Arc;

/// Broadcast join tables in transit, by name: sealed partition-tagged page
/// lists plus their once-built tag filters ([`SharedTable`]). Receivers
/// reassemble the partition chains from the page tags instead of
/// concatenating every page into one flat scan list.
pub type TableStore = HashMap<String, SharedTable>;

/// Runs one pipeline as a distributed job stage.
pub fn run_stage_distributed(
    cluster: &PcCluster,
    p: &PipelineSpec,
    stages: &StageLibrary,
    aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    tables: &mut TableStore,
) -> PcResult<ExecStats> {
    let nworkers = cluster.workers.len();

    // ---- run the pipeline on every worker, morsel-driven ----
    type WorkerResult = PcResult<(Vec<MorselOutput>, ExecStats)>;
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for w in 0..nworkers {
            let tables_ref: &TableStore = tables;
            joins.push(scope.spawn(move || -> WorkerResult {
                let pages = cluster.local_pages(w, &p.source)?;
                // Simulate the worker's local type catalog faulting the
                // root type from the master (the .so fetch of §6.3).
                if let Some(first) = pages.first() {
                    let block = first.open_block();
                    let code = block.obj_code(first.root());
                    cluster.workers[w].types.resolve(code)?;
                }
                // The worker's pipelining threads pull morsels from a
                // shared work-stealing queue; each probe thread opens its
                // own zero-copy view of any broadcast join tables. The
                // worker's own pool backs its memory budget and spill store.
                let exec_cfg = cluster.worker_exec_config(w);
                run_stage_morsels(&exec_cfg, p, &pages, stages, aggs, tables_ref)
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("worker thread"))
            .collect()
    });

    let mut stats = ExecStats::default();
    let mut per_worker_outputs: Vec<Vec<MorselOutput>> = Vec::with_capacity(nworkers);
    for r in results {
        let (outs, s) = r?;
        stats.absorb(&s);
        per_worker_outputs.push(outs);
    }

    // ---- route sink outputs ----
    match &p.sink {
        Sink::Output { .. } | Sink::Materialize { .. } => {
            for (w, outs) in per_worker_outputs.into_iter().enumerate() {
                for out in outs {
                    let MorselOutput::Pages(pages) = out else {
                        unreachable!()
                    };
                    cluster.store_output(w, &p.sink, pages)?;
                }
            }
        }
        Sink::JoinBuild {
            table, obj_cols, ..
        } => {
            // Gather every worker's partition-tagged build pages at the
            // master and broadcast. Per-morsel builds fold together
            // partition-wise: a page tagged `p` joins every other worker's
            // partition-`p` chain on the receiving side, so probes there
            // still touch exactly one partition.
            let transport = cluster.transport();
            let mut parts_in_send_order: Vec<usize> = Vec::new();
            let mut src_in_send_order: Vec<usize> = Vec::new();
            let mut partitions = JoinTable::round_partitions(cluster.config.exec.join_partitions);
            let mut total_bytes = 0usize;
            for (w, outs) in per_worker_outputs.into_iter().enumerate() {
                for out in outs {
                    let MorselOutput::TablePages {
                        groups,
                        bytes,
                        partitions: parts,
                        pages,
                    } = out
                    else {
                        unreachable!()
                    };
                    stats.join_groups += groups;
                    total_bytes += bytes;
                    partitions = parts;
                    for (part, page) in pages {
                        // Queue for the master; the partition tag and the
                        // producer ride side-band in send order, which
                        // collect() restores.
                        transport.send(w, MASTER, &page)?;
                        parts_in_send_order.push(part);
                        src_in_send_order.push(w);
                    }
                }
            }
            let gathered: Vec<(usize, Arc<SealedPage>)> = parts_in_send_order
                .iter()
                .copied()
                .zip(transport.collect(MASTER)?.into_iter().map(Arc::new))
                .collect();
            // ...and once to every worker that didn't build the page (the
            // broadcast). Each copy crosses the transport — so faults hit
            // it — while the shared Arc stands in for the per-worker copy.
            for (i, (_part, page)) in gathered.iter().enumerate() {
                for w in 0..nworkers {
                    if w != src_in_send_order[i] {
                        transport.send(MASTER, w, page)?;
                    }
                }
            }
            for w in 0..nworkers {
                let _ = transport.collect(w)?;
            }
            cluster.note_broadcast();
            if total_bytes > cluster.config.broadcast_threshold {
                // A full hash-partition join would repartition instead; this
                // simulation broadcasts either way but keeps the signal.
            }
            // Tag filters are built once here, from the gathered pages'
            // stored hashes; every reopening thread shares them. The gather
            // is where the table's full size first exists in one place, so
            // it reserves against a budget and sheds partitions that do not
            // fit (this in-process cluster shares one broadcast table, so
            // worker 0's pool stands in for the per-worker copy).
            let spill = cluster.worker_spill_ctx(0);
            let st = SharedTable::from_tagged_pages_budgeted(
                obj_cols.len(),
                partitions,
                gathered,
                Some(&spill),
            )?;
            stats.join_partitions_spilled += st.spilled_partitions() as u64;
            stats.join_bytes_spilled += st.spilled_bytes() as u64;
            tables.insert(table.clone(), st);
        }
        Sink::AggProduce { comp, dest, .. } => {
            run_aggregation_stage(cluster, comp, dest, aggs, per_worker_outputs, &mut stats)?;
        }
    }
    Ok(stats)
}

/// The consuming side of distributed aggregation (Appendix D.2): combine
/// per-morsel partition pages on each worker, shuffle them to the partition
/// owners, merge, and materialize.
fn run_aggregation_stage(
    cluster: &PcCluster,
    comp: &str,
    dest: &pc_exec::AggDest,
    aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    per_worker_outputs: Vec<Vec<MorselOutput>>,
    stats: &mut ExecStats,
) -> PcResult<()> {
    let agg = aggs
        .get(comp)
        .ok_or_else(|| PcError::Catalog(format!("no aggregation engine for {comp}")))?;
    let nworkers = cluster.workers.len();
    let page_size = cluster.config.exec.page_size;

    // Combining step, per worker (Appendix D.2's K combining threads):
    // merge the morsels' partial maps per partition, so each worker ships
    // at most one combined page per partition. Partitions are dealt
    // round-robin over the unified `exec.threads` knob; each merge is
    // page-at-a-time (`PcMap::merge_from` under the hood, in morsel order
    // within a partition), and results are re-sorted by partition so the
    // shuffle order stays deterministic.
    let combine_threads = cluster.config.exec.threads.max(1);
    let combined: Vec<PcResult<Vec<(usize, SealedPage)>>> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for outs in per_worker_outputs {
            let agg = agg.clone();
            joins.push(scope.spawn(move || -> PcResult<Vec<(usize, SealedPage)>> {
                let mut by_part: HashMap<usize, Vec<pc_lambda::AggPage>> = HashMap::new();
                for out in outs {
                    let MorselOutput::AggPartitions(parts) = out else {
                        unreachable!()
                    };
                    for (part, page) in parts {
                        by_part.entry(part).or_default().push(page);
                    }
                }
                let mut parts: Vec<(usize, Vec<pc_lambda::AggPage>)> =
                    by_part.into_iter().collect();
                parts.sort_by_key(|(p, _)| *p);
                // Deal partitions over the worker's combining threads.
                let mut lanes: Vec<Vec<(usize, Vec<pc_lambda::AggPage>)>> =
                    (0..combine_threads).map(|_| Vec::new()).collect();
                for (i, entry) in parts.into_iter().enumerate() {
                    lanes[i % combine_threads].push(entry);
                }
                let lane_results: Vec<PcResult<Vec<(usize, SealedPage)>>> =
                    std::thread::scope(|s2| {
                        let mut handles = Vec::new();
                        for lane in lanes {
                            let agg = agg.clone();
                            handles.push(s2.spawn(
                                move || -> PcResult<Vec<(usize, SealedPage)>> {
                                    let mut shipped = Vec::new();
                                    for (part, pages) in lane {
                                        if pages.len() == 1 {
                                            // Nothing to combine; forward as-is
                                            // (reloading if it sits spilled).
                                            let page = pages.into_iter().next().unwrap().load()?;
                                            shipped.push((part, page));
                                            continue;
                                        }
                                        let mut merger = agg.new_merger(page_size);
                                        for page in pages {
                                            // Spilled pages reload one at a
                                            // time: the combine never holds a
                                            // partition's whole chain in RAM.
                                            merger.merge_page(page.load()?)?;
                                        }
                                        for page in merger.into_pages()? {
                                            shipped.push((part, page));
                                        }
                                    }
                                    Ok(shipped)
                                },
                            ));
                        }
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("combining thread"))
                            .collect()
                    });
                let mut shipped = Vec::new();
                for r in lane_results {
                    shipped.extend(r?);
                }
                // Reproducible shuffle order regardless of lane scheduling.
                shipped.sort_by_key(|(p, _)| *p);
                Ok(shipped)
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("combining worker"))
            .collect()
    });

    // Shuffle: partition p's pages go to worker p % W over the transport.
    // All sends are queued before any inbox is collected, so a streaming
    // transport overlaps chunk delivery with the remaining combines.
    let transport = cluster.transport();
    for (src_w, r) in combined.into_iter().enumerate() {
        for (part, page) in r? {
            let owner = part % nworkers;
            transport.send(src_w, owner, &page)?;
        }
    }
    let mut inbox: Vec<Vec<SealedPage>> = Vec::with_capacity(nworkers);
    for w in 0..nworkers {
        inbox.push(transport.collect(w)?);
    }

    // Aggregation threads: each owner merges its inbox and materializes.
    let finals: Vec<PcResult<(u64, Vec<SealedPage>)>> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for pages in inbox {
            let agg = agg.clone();
            joins.push(scope.spawn(move || -> PcResult<(u64, Vec<SealedPage>)> {
                if pages.is_empty() {
                    return Ok((0, Vec::new()));
                }
                let mut merger = agg.new_merger(page_size);
                for page in pages {
                    merger.merge_page(page)?;
                }
                let mut writer = SetWriter::new(page_size);
                let groups = merger.finalize(&mut writer)?;
                Ok((groups, writer.finish()?))
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("aggregation thread"))
            .collect()
    });

    let (db, set): (String, String) = match dest {
        pc_exec::AggDest::Set { db, set } => (db.clone(), set.clone()),
        pc_exec::AggDest::Intermediate { list } => {
            cluster.catalog.ensure_set(pc_exec::TMP_DB, list);
            (pc_exec::TMP_DB.to_string(), list.clone())
        }
    };
    for (w, r) in finals.into_iter().enumerate() {
        let (groups, pages) = r?;
        stats.agg_groups += groups;
        stats.rows_out += groups;
        for page in pages {
            cluster.workers[w].storage.append_page(&db, &set, page)?;
            stats.pages_written += 1;
        }
    }
    Ok(())
}
