//! Test support: the byte-identity assertions shared by the determinism
//! regression tests and the chaos suite.
//!
//! Every recovery claim in this crate reduces to one check: *a run under
//! faults produces byte-identical output to a fault-free run*. Centralizing
//! the comparison here means each new chaos scenario gets the strongest
//! available assertion — full page bytes, not row counts — for free.

use crate::cluster::PcCluster;
use pc_object::PcResult;

/// Every page of `db.set` across all workers, as raw bytes, sorted — a
/// canonical form invariant to which worker holds which page.
pub fn set_bytes_sorted(c: &PcCluster, db: &str, set: &str) -> PcResult<Vec<Vec<u8>>> {
    let mut pages: Vec<Vec<u8>> = c.scan_set(db, set)?.iter().map(|p| p.to_bytes()).collect();
    pages.sort();
    Ok(pages)
}

/// Asserts two runs produced byte-identical output. `label` should carry
/// everything needed to reproduce a failure in one line (scenario, seed,
/// fault schedule).
#[track_caller]
pub fn assert_runs_identical(label: &str, baseline: &[Vec<u8>], candidate: &[Vec<u8>]) {
    assert!(
        !baseline.is_empty(),
        "[{label}] baseline run produced no result pages"
    );
    assert_eq!(
        baseline.len(),
        candidate.len(),
        "[{label}] page count differs: {} vs {}",
        baseline.len(),
        candidate.len()
    );
    for (i, (b, c)) in baseline.iter().zip(candidate).enumerate() {
        assert_eq!(
            b, c,
            "[{label}] result page {i} differs from the fault-free run"
        );
    }
}
