//! # pc-cluster — PlinyCompute's simulated distributed runtime
//!
//! Implements §2 and Appendix D on a single machine: a **master** (catalog,
//! TCAP optimizer, distributed query scheduler) plus N **workers**, each
//! with its own storage manager, buffer pool, worker type catalog, and
//! backend executor threads.
//!
//! Faithfulness notes (see DESIGN.md for the full substitution table):
//!
//! * All inter-node movement goes through `SealedPage::to_bytes` /
//!   `from_bytes` — a byte-level copy standing in for the network. Pages
//!   arrive valid with zero per-object work, and the cluster counts every
//!   shuffled byte.
//! * Distributed aggregation follows Appendix D.2: per-worker pipelining
//!   threads pre-aggregate into hash-partitioned `Map` pages, pages flow
//!   through a zero-copy pointer queue to combining threads, combined pages
//!   shuffle to the partition's owner, and aggregation threads merge and
//!   materialize.
//! * Join build sides are broadcast when small (the §8.3.2 rule); the
//!   hash-partition path repartitions probe rows to the partition owners.

pub mod cluster;
pub mod recovery;
pub mod stages;
pub mod testkit;
pub mod transport;
pub mod wire;

pub use cluster::{ClusterConfig, ClusterStats, PcCluster};
pub use recovery::{Liveness, RecoveryPolicy};
pub use transport::{
    FaultKind, FaultSpec, FaultyTransport, LocalTransport, StreamConfig, StreamTransport,
    TcpConfig, TcpTransport, Transport, TransportKind, TransportMeter, MASTER,
};
