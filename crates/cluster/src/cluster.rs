//! The cluster: master node + worker nodes (Figure 4), and the distributed
//! query scheduler that turns a physical plan into JobStages.

use crate::recovery::{self, Liveness, RecoveryPolicy};
use crate::stages;
use crate::transport::{Transport, TransportKind, TransportMeter, MASTER};
use pc_exec::{plan, ExecConfig, ExecStats, PhysicalPlan, Sink, Source};
use pc_lambda::{CompiledQuery, ErasedAgg, SetWriter, SpillCtx, StageLibrary};
use pc_object::{AnyHandle, PcError, PcResult, PressureSpec, SealedPage};
use pc_storage::{Catalog, StorageManager, WorkerTypeCatalog};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster shape and executor tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub workers: usize,
    /// Per-pipeline executor knobs. `exec.threads` is the one parallelism
    /// knob: it sets each worker's pipelining threads (Appendix D.2's N)
    /// and its aggregation combining threads (D.2's K) alike.
    pub exec: ExecConfig,
    /// Build sides smaller than this broadcast; larger ones hash-partition
    /// (the §8.3.2 "two gigabytes" rule, scaled down).
    pub broadcast_threshold: usize,
    /// How pages move between nodes (in-process copy, chunked streaming,
    /// or either of those under fault injection).
    pub transport: TransportKind,
    /// Stage-replay limits for worker recovery.
    pub recovery: RecoveryPolicy,
    /// Per-worker buffer-pool capacity in bytes: the pool's page cache AND
    /// the memory budget its operators reserve working memory against.
    /// Datasets larger than this spill and run out of core.
    pub pool_capacity: usize,
    /// Seeded memory-pressure injection armed on every worker pool's budget
    /// (chaos testing): reservations are denied as a pure function of
    /// `seed ×` reservation index, forcing spill paths under randomized
    /// pressure while results stay byte-identical.
    pub pressure: Option<PressureSpec>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            exec: ExecConfig::default(),
            broadcast_threshold: 64 << 20,
            transport: TransportKind::default(),
            recovery: RecoveryPolicy::default(),
            pool_capacity: 1 << 30,
            pressure: None,
        }
    }
}

/// Cluster-wide execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterStats {
    pub exec: ExecStats,
    /// Logical bytes that crossed the network (each delivered page once;
    /// retries and aborted stage attempts never inflate this).
    pub bytes_shuffled: u64,
    /// Logical pages that crossed the network.
    pub pages_shuffled: u64,
    /// Broadcast join tables shipped.
    pub tables_broadcast: u64,
    /// Wire bytes wasted on dropped attempts and aborted stage deliveries.
    pub bytes_retransmitted: u64,
    /// Wire-level send attempts that produced no logical delivery.
    pub sends_failed: u64,
    /// Stages re-run by the recovery protocol.
    pub stages_replayed: u64,
    /// Worker backends restarted after a detected death.
    pub workers_recovered: u64,
    /// Heartbeat intervals that elapsed with no beat from a worker (wire
    /// transports with a liveness monitor; zero otherwise).
    pub heartbeats_missed: u64,
    /// Connections re-established after a failure, with backoff.
    pub reconnects: u64,
}

/// One worker node: its own storage (buffer pool + spill dir) and local
/// type catalog. The "front-end"/"backend" split of §2 maps to the storage
/// service (front-end, crash-proof) vs. the executor threads (backend,
/// running user kernels).
pub struct WorkerNode {
    pub id: usize,
    pub storage: StorageManager,
    pub types: WorkerTypeCatalog,
}

/// The cluster handle — what a `PcClient` talks to.
pub struct PcCluster {
    pub config: ClusterConfig,
    pub catalog: Arc<Catalog>,
    pub workers: Vec<WorkerNode>,
    transport: Arc<dyn Transport>,
    meter: Arc<TransportMeter>,
    liveness: Liveness,
    tables_broadcast: AtomicU64,
    stages_replayed: AtomicU64,
    workers_recovered: AtomicU64,
    round_robin: AtomicU64,
}

impl PcCluster {
    /// Boots a cluster with per-worker temp spill directories.
    pub fn new(config: ClusterConfig) -> PcResult<Self> {
        let catalog = Arc::new(Catalog::new());
        let base = std::env::temp_dir().join(format!(
            "pccluster_{}_{}",
            std::process::id(),
            crate::cluster::unique_suffix()
        ));
        let mut workers = Vec::with_capacity(config.workers);
        for id in 0..config.workers {
            let storage = StorageManager::with_pressure(
                catalog.clone(),
                config.pool_capacity,
                base.join(format!("worker{id}")),
                config.pressure.clone(),
            )?;
            workers.push(WorkerNode {
                id,
                storage,
                types: WorkerTypeCatalog::new(),
            });
        }
        let meter = Arc::new(TransportMeter::default());
        let transport = config.transport.build(meter.clone(), config.workers)?;
        let liveness = Liveness::new(config.workers);
        Ok(PcCluster {
            config,
            catalog,
            workers,
            transport,
            meter,
            liveness,
            tables_broadcast: AtomicU64::new(0),
            stages_replayed: AtomicU64::new(0),
            workers_recovered: AtomicU64::new(0),
            round_robin: AtomicU64::new(0),
        })
    }

    /// The transport moving every inter-node page.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The shared traffic meter the transport stack reports into.
    pub fn meter(&self) -> &Arc<TransportMeter> {
        &self.meter
    }

    /// Worker liveness epochs as the master sees them.
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    pub fn stats_snapshot(&self) -> ClusterStats {
        ClusterStats {
            exec: ExecStats::default(),
            bytes_shuffled: self.meter.bytes_shuffled(),
            pages_shuffled: self.meter.pages_shuffled(),
            tables_broadcast: self.tables_broadcast.load(Ordering::Relaxed),
            bytes_retransmitted: self.meter.bytes_retransmitted(),
            sends_failed: self.meter.sends_failed(),
            stages_replayed: self.stages_replayed.load(Ordering::Relaxed),
            workers_recovered: self.workers_recovered.load(Ordering::Relaxed),
            heartbeats_missed: self.meter.heartbeats_missed(),
            reconnects: self.meter.reconnects(),
        }
    }

    /// The out-of-core context worker `w`'s operators run under: the
    /// worker pool's byte budget plus a fresh spill set on that pool. The
    /// spill set cleans up its files when the last page referencing it
    /// drops, so an aborted stage cannot leak spill files.
    pub(crate) fn worker_spill_ctx(&self, w: usize) -> SpillCtx {
        let pool = self.workers[w].storage.pool();
        SpillCtx {
            budget: pool.budget(),
            spiller: Arc::new(pool.spill_set()),
        }
    }

    /// Worker `w`'s per-stage exec config: the cluster-wide knobs with the
    /// worker's own pool armed as the spill target (unless the caller
    /// already provided one).
    pub(crate) fn worker_exec_config(&self, w: usize) -> ExecConfig {
        let mut cfg = self.config.exec.clone();
        if cfg.spill.is_none() {
            cfg.spill = Some(self.worker_spill_ctx(w));
        }
        cfg
    }

    /// Sum of every worker pool's counters (for before/after run deltas).
    fn pool_stats_sum(&self) -> pc_storage::PoolStats {
        let mut sum = pc_storage::PoolStats::default();
        for w in &self.workers {
            let s = w.storage.pool().stats();
            sum.hits += s.hits;
            sum.misses += s.misses;
            sum.evictions += s.evictions;
            sum.spills += s.spills;
            sum.bytes_spilled += s.bytes_spilled;
        }
        sum
    }

    pub(crate) fn note_broadcast(&self) {
        self.tables_broadcast.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_stage_replayed(&self) {
        self.stages_replayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Restart worker `w`'s backend after a detected death: bump its
    /// liveness epoch and clear its dead state in the transport.
    pub(crate) fn recover_worker(&self, w: usize) {
        self.liveness.restart(w);
        self.transport.revive(w);
        self.workers_recovered.fetch_add(1, Ordering::Relaxed);
    }

    // ------------------------------------------------------------- storage

    /// Creates a set cluster-wide (errors if present).
    pub fn create_set(&self, db: &str, set: &str) -> PcResult<()> {
        self.catalog.create_set(db, set)?;
        Ok(())
    }

    /// Creates or clears a set cluster-wide.
    pub fn create_or_clear_set(&self, db: &str, set: &str) -> PcResult<()> {
        self.catalog.ensure_set(db, set);
        self.catalog.reset_set(db, set);
        for w in &self.workers {
            w.storage.create_or_clear_set(db, set)?;
        }
        Ok(())
    }

    /// Drops a set cluster-wide: worker pages and the master catalog entry
    /// (so `set_size` never reports a dropped set's stale counts).
    pub fn drop_set(&self, db: &str, set: &str) -> PcResult<()> {
        if !self.catalog.exists(db, set) {
            return Err(PcError::Catalog(format!("set {db}.{set} does not exist")));
        }
        for w in &self.workers {
            w.storage.drop_set(db, set);
        }
        // Worker storage drops already clear the shared master catalog, but
        // a 0-worker or partially-registered set must still disappear.
        self.catalog.drop_set(db, set);
        Ok(())
    }

    /// Dispatches client pages round-robin across workers (`sendData`): the
    /// allocation block travels in its entirety, no pre-processing (§3).
    ///
    /// Delivery is transactional against faults: pages are appended to
    /// worker storage only after *every* worker's inbox has been collected,
    /// so a mid-load failure replays the whole batch without duplicating a
    /// single page.
    pub fn send_pages(&self, db: &str, set: &str, pages: Vec<SealedPage>) -> PcResult<()> {
        // Fix the placement up front so replays keep the same distribution.
        let targets: Vec<usize> = pages
            .iter()
            .map(|_| {
                (self.round_robin.fetch_add(1, Ordering::Relaxed) as usize) % self.workers.len()
            })
            .collect();
        let delivered: Vec<Vec<SealedPage>> = recovery::with_stage_recovery(self, &[], || {
            for (page, w) in pages.iter().zip(&targets) {
                self.transport.send(MASTER, *w, page)?;
            }
            let mut per_worker = Vec::with_capacity(self.workers.len());
            for w in 0..self.workers.len() {
                per_worker.push(self.transport.collect(w)?);
            }
            Ok(per_worker)
        })?;
        for (w, pages) in delivered.into_iter().enumerate() {
            for page in pages {
                self.workers[w].storage.append_page(db, set, page)?;
            }
        }
        Ok(())
    }

    /// Gathers a set's pages from every worker (client-side read).
    pub fn scan_set(&self, db: &str, set: &str) -> PcResult<Vec<Arc<SealedPage>>> {
        let mut all = Vec::new();
        for w in &self.workers {
            all.extend(w.storage.scan(db, set)?);
        }
        Ok(all)
    }

    /// Iterates every object of a set as untyped handles.
    pub fn scan_objects(&self, db: &str, set: &str) -> PcResult<Vec<AnyHandle>> {
        let mut out = Vec::new();
        for page in self.scan_set(db, set)? {
            let (_b, root) = page.open_view()?;
            let v = root.downcast::<pc_object::PcVec<pc_object::Handle<pc_object::AnyObj>>>()?;
            for h in v.iter() {
                out.push(h.erase());
            }
        }
        Ok(out)
    }

    /// Total objects in a set (catalog metadata).
    pub fn set_size(&self, db: &str, set: &str) -> u64 {
        self.catalog
            .set_meta(db, set)
            .map(|m| m.objects)
            .unwrap_or(0)
    }

    // ------------------------------------------------------------ execution

    /// Optimizes, plans, and executes a compiled query across the cluster.
    /// With `config.exec.verify_plans` set (the default), the optimized
    /// TCAP program is statically verified before planning — a broken plan
    /// (whether lowered broken or broken by an optimizer rule) is refused
    /// with [`PcError::PlanRejected`] instead of executing.
    pub fn execute(&self, q: &CompiledQuery) -> PcResult<ClusterStats> {
        let mut tcap = q.tcap.clone();
        pc_tcap::optimize(&mut tcap);
        if self.config.exec.verify_plans {
            pc_tcap::verify::require_clean(&tcap).map_err(PcError::PlanRejected)?;
        }
        let physical = plan(&tcap)?;
        self.run_physical(&physical, &q.stages, &q.aggs)
    }

    /// Executes an already-planned query.
    pub fn run_physical(
        &self,
        physical: &PhysicalPlan,
        stages: &StageLibrary,
        aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    ) -> PcResult<ClusterStats> {
        let before = self.stats_snapshot();
        let pool_before = self.pool_stats_sum();
        // Fault schedules only tick while a job is in flight, so chaos
        // seeds describe the job, not whatever loading preceded it.
        self.transport.arm();
        let run = (|| -> PcResult<ExecStats> {
            let mut exec = ExecStats::default();
            // A previous query's materialized pages must never leak into
            // this one's deterministically-named tmp lists.
            for list in physical.intermediate_lists() {
                self.create_or_clear_set(pc_exec::TMP_DB, list)?;
            }
            // Broadcast join tables live as shared partition-tagged page
            // lists plus their once-built tag filters, one per join.
            let mut tables: stages::TableStore = HashMap::new();
            for p in &physical.pipelines {
                let s = recovery::run_stage_with_recovery(self, p, stages, aggs, &mut tables)?;
                exec.absorb(&s);
                exec.pipelines_run += 1;
            }
            Ok(exec)
        })();
        self.transport.disarm();
        let mut exec = run?;
        let pool_after = self.pool_stats_sum();
        exec.pool_hits += pool_after.hits - pool_before.hits;
        exec.pool_misses += pool_after.misses - pool_before.misses;
        exec.pool_evictions += pool_after.evictions - pool_before.evictions;
        exec.pool_spills += pool_after.spills - pool_before.spills;
        exec.pool_bytes_spilled += pool_after.bytes_spilled - pool_before.bytes_spilled;
        let after = self.stats_snapshot();
        Ok(ClusterStats {
            exec,
            bytes_shuffled: after.bytes_shuffled - before.bytes_shuffled,
            pages_shuffled: after.pages_shuffled - before.pages_shuffled,
            tables_broadcast: after.tables_broadcast - before.tables_broadcast,
            bytes_retransmitted: after.bytes_retransmitted - before.bytes_retransmitted,
            sends_failed: after.sends_failed - before.sends_failed,
            stages_replayed: after.stages_replayed - before.stages_replayed,
            workers_recovered: after.workers_recovered - before.workers_recovered,
            heartbeats_missed: after.heartbeats_missed - before.heartbeats_missed,
            reconnects: after.reconnects - before.reconnects,
        })
    }

    /// Pages of `source` local to worker `w`.
    pub(crate) fn local_pages(&self, w: usize, source: &Source) -> PcResult<Vec<Arc<SealedPage>>> {
        match source {
            Source::Set { db, set, .. } => self.workers[w].storage.scan(db, set),
            Source::Intermediate { list, .. } => {
                self.workers[w].storage.scan(pc_exec::TMP_DB, list)
            }
        }
    }

    /// Appends result pages for a sink on worker `w`.
    pub(crate) fn store_output(
        &self,
        w: usize,
        sink: &Sink,
        pages: Vec<SealedPage>,
    ) -> PcResult<()> {
        let (db, set) = match sink {
            Sink::Output { db, set, .. } => (db.clone(), set.clone()),
            Sink::Materialize { list, .. } => {
                self.catalog.ensure_set(pc_exec::TMP_DB, list);
                (pc_exec::TMP_DB.to_string(), list.clone())
            }
            _ => unreachable!("store_output on non-page sink"),
        };
        for page in pages {
            self.workers[w].storage.append_page(&db, &set, page)?;
        }
        Ok(())
    }
}

/// Writes typed client data into sealed pages ready for `send_pages`.
pub fn pages_from<I>(page_size: usize, objs: I) -> PcResult<Vec<SealedPage>>
where
    I: IntoIterator,
    I::Item: FnOnce() -> PcResult<AnyHandle>,
{
    let mut w = SetWriter::new(page_size);
    for make in objs {
        let mut make = Some(make);
        w.write_with(|| (make.take().expect("single call"))())?;
    }
    w.finish()
}

pub(crate) fn unique_suffix() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}
