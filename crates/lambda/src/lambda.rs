//! Lambda terms: the paper's §4 abstraction families and higher-order
//! composition functions.
//!
//! A `Lambda<R>` does **not** compute anything when built — it is a symbolic
//! description of a computation over the inputs of a `Computation`, which
//! the TCAP compiler later flattens into APPLY statements. "A programmer is
//! not supplying a computation over input data; rather, a programmer is
//! supplying an expression in the lambda calculus that specifies how to
//! construct the computation."

use crate::kernel::{ColumnKernel, Extract1, Extract2, Extract3};
use pc_object::{Handle, PcObjType, PcResult};
use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::sync::Arc;

pub use crate::kernel::BinOpKind as BinOp;
pub use crate::kernel::ConstOperand as ConstVal;

/// A node in a lambda term tree.
#[derive(Clone)]
pub enum LambdaTerm {
    /// A lambda abstraction over one or more inputs: member access, method
    /// call, or opaque native code, with its compiled kernel.
    Extract {
        inputs: Vec<usize>,
        /// TCAP metadata `type`: `attAccess`, `methodCall`, or `native`.
        op_type: &'static str,
        /// The `attName` / `methodName` / native label.
        name: String,
        kernel: Arc<dyn ColumnKernel>,
    },
    /// The identity function on input `input` (`makeLambdaFromSelf`).
    SelfRef { input: usize },
    /// A higher-order composition: `==`, `>`, `&&`, `+`, ...
    Binary {
        op: BinOp,
        lhs: Box<LambdaTerm>,
        rhs: Box<LambdaTerm>,
    },
    /// Boolean negation.
    Not { inner: Box<LambdaTerm> },
    /// Comparison against a constant.
    ConstCmp {
        op: BinOp,
        value: ConstVal,
        inner: Box<LambdaTerm>,
    },
}

impl LambdaTerm {
    /// The set of computation inputs this term reads.
    pub fn inputs(&self) -> BTreeSet<usize> {
        match self {
            LambdaTerm::Extract { inputs, .. } => inputs.iter().copied().collect(),
            LambdaTerm::SelfRef { input } => BTreeSet::from([*input]),
            LambdaTerm::Binary { lhs, rhs, .. } => {
                let mut s = lhs.inputs();
                s.extend(rhs.inputs());
                s
            }
            LambdaTerm::Not { inner } | LambdaTerm::ConstCmp { inner, .. } => inner.inputs(),
        }
    }

    /// Splits a boolean term into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&LambdaTerm> {
        match self {
            LambdaTerm::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut v = lhs.conjuncts();
                v.extend(rhs.conjuncts());
                v
            }
            other => vec![other],
        }
    }
}

impl std::fmt::Debug for LambdaTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LambdaTerm::Extract {
                inputs,
                op_type,
                name,
                ..
            } => {
                write!(f, "{op_type}({name} over {inputs:?})")
            }
            LambdaTerm::SelfRef { input } => write!(f, "self({input})"),
            LambdaTerm::Binary { op, lhs, rhs } => {
                write!(f, "({lhs:?} {} {rhs:?})", op.tcap_name())
            }
            LambdaTerm::Not { inner } => write!(f, "!({inner:?})"),
            LambdaTerm::ConstCmp { op, value, inner } => {
                write!(f, "({inner:?} {} {value})", op.tcap_name())
            }
        }
    }
}

/// A typed lambda term: `R` is the value type the term produces per record.
pub struct Lambda<R> {
    pub term: LambdaTerm,
    _pd: PhantomData<fn() -> R>,
}

impl<R> Clone for Lambda<R> {
    fn clone(&self) -> Self {
        Lambda {
            term: self.term.clone(),
            _pd: PhantomData,
        }
    }
}

impl<R> Lambda<R> {
    pub fn from_term(term: LambdaTerm) -> Self {
        Lambda {
            term,
            _pd: PhantomData,
        }
    }

    fn binary<R2, O>(self, op: BinOp, rhs: Lambda<R2>) -> Lambda<O> {
        Lambda::from_term(LambdaTerm::Binary {
            op,
            lhs: Box::new(self.term),
            rhs: Box::new(rhs.term),
        })
    }

    /// `==` (the paper's equality higher-order function).
    pub fn eq(self, rhs: Lambda<R>) -> Lambda<bool> {
        self.binary(BinOp::Eq, rhs)
    }

    /// `!=`
    pub fn ne(self, rhs: Lambda<R>) -> Lambda<bool> {
        self.binary(BinOp::Ne, rhs)
    }

    /// `>`
    pub fn gt(self, rhs: Lambda<R>) -> Lambda<bool> {
        self.binary(BinOp::Gt, rhs)
    }

    /// `<`
    pub fn lt(self, rhs: Lambda<R>) -> Lambda<bool> {
        self.binary(BinOp::Lt, rhs)
    }

    /// `+`
    pub fn add(self, rhs: Lambda<R>) -> Lambda<R> {
        self.binary(BinOp::Add, rhs)
    }

    /// `-`
    pub fn sub(self, rhs: Lambda<R>) -> Lambda<R> {
        self.binary(BinOp::Sub, rhs)
    }

    /// `*`
    pub fn mul(self, rhs: Lambda<R>) -> Lambda<R> {
        self.binary(BinOp::Mul, rhs)
    }

    fn cmp_const(self, op: BinOp, value: ConstVal) -> Lambda<bool> {
        Lambda::from_term(LambdaTerm::ConstCmp {
            op,
            value,
            inner: Box::new(self.term),
        })
    }

    /// Compare against a constant: `> c`.
    pub fn gt_const(self, c: impl Into<ConstVal>) -> Lambda<bool> {
        self.cmp_const(BinOp::Gt, c.into())
    }

    /// `< c`
    pub fn lt_const(self, c: impl Into<ConstVal>) -> Lambda<bool> {
        self.cmp_const(BinOp::Lt, c.into())
    }

    /// `>= c`
    pub fn ge_const(self, c: impl Into<ConstVal>) -> Lambda<bool> {
        self.cmp_const(BinOp::Ge, c.into())
    }

    /// `<= c`
    pub fn le_const(self, c: impl Into<ConstVal>) -> Lambda<bool> {
        self.cmp_const(BinOp::Le, c.into())
    }

    /// `== c`
    pub fn eq_const(self, c: impl Into<ConstVal>) -> Lambda<bool> {
        self.cmp_const(BinOp::Eq, c.into())
    }
}

impl Lambda<bool> {
    /// `&&`
    pub fn and(self, rhs: Lambda<bool>) -> Lambda<bool> {
        self.binary(BinOp::And, rhs)
    }

    /// `||`
    pub fn or(self, rhs: Lambda<bool>) -> Lambda<bool> {
        self.binary(BinOp::Or, rhs)
    }

    /// `!`
    pub fn not(self) -> Lambda<bool> {
        Lambda::from_term(LambdaTerm::Not {
            inner: Box::new(self.term),
        })
    }
}

impl From<i64> for ConstVal {
    fn from(v: i64) -> Self {
        ConstVal::I64(v)
    }
}

impl From<f64> for ConstVal {
    fn from(v: f64) -> Self {
        ConstVal::F64(v)
    }
}

impl From<&str> for ConstVal {
    fn from(v: &str) -> Self {
        ConstVal::Str(v.to_string())
    }
}

// ------------------------------------------------------------ constructors

/// `makeLambdaFromMember`: a lambda returning one of the pointed-to
/// object's member variables (§4 family 1). The member name is exposed as
/// `attAccess` metadata so the optimizer can reason about it.
pub fn make_lambda_from_member<T, R>(
    input: usize,
    att_name: &str,
    getter: impl Fn(&Handle<T>) -> R + Send + Sync + 'static,
) -> Lambda<R>
where
    T: PcObjType,
    R: crate::column::ColValue,
{
    Lambda::from_term(LambdaTerm::Extract {
        inputs: vec![input],
        op_type: "attAccess",
        name: att_name.to_string(),
        kernel: Arc::new(Extract1 {
            f: move |h: &Handle<T>| Ok(getter(h)),
            _pd: PhantomData,
        }),
    })
}

/// `makeLambdaFromMethod`: a lambda calling a method on the pointed-to
/// object (§4 family 2). Method calls are assumed purely functional — the
/// redundant-call-elimination rule depends on it.
pub fn make_lambda_from_method<T, R>(
    input: usize,
    method_name: &str,
    method: impl Fn(&Handle<T>) -> R + Send + Sync + 'static,
) -> Lambda<R>
where
    T: PcObjType,
    R: crate::column::ColValue,
{
    Lambda::from_term(LambdaTerm::Extract {
        inputs: vec![input],
        op_type: "methodCall",
        name: method_name.to_string(),
        kernel: Arc::new(Extract1 {
            f: move |h: &Handle<T>| Ok(method(h)),
            _pd: PhantomData,
        }),
    })
}

/// `makeLambda`: wraps opaque native code (§4 family 3). The plan treats it
/// as a black box — PC "would be unable to optimize the compute plan" had
/// the programmer hidden everything here. The closure is fallible so that
/// projections may allocate output objects (a `BlockFull` fault rolls the
/// output page).
pub fn make_lambda<T, R>(
    input: usize,
    label: &str,
    f: impl Fn(&Handle<T>) -> PcResult<R> + Send + Sync + 'static,
) -> Lambda<R>
where
    T: PcObjType,
    R: crate::column::ColValue,
{
    Lambda::from_term(LambdaTerm::Extract {
        inputs: vec![input],
        op_type: "native",
        name: label.to_string(),
        kernel: Arc::new(Extract1 {
            f,
            _pd: PhantomData,
        }),
    })
}

/// A native lambda over two inputs (join projections, residual predicates).
pub fn make_lambda2<A, B, R>(
    inputs: (usize, usize),
    label: &str,
    f: impl Fn(&Handle<A>, &Handle<B>) -> PcResult<R> + Send + Sync + 'static,
) -> Lambda<R>
where
    A: PcObjType,
    B: PcObjType,
    R: crate::column::ColValue,
{
    Lambda::from_term(LambdaTerm::Extract {
        inputs: vec![inputs.0, inputs.1],
        op_type: "native",
        name: label.to_string(),
        kernel: Arc::new(Extract2 {
            f,
            _pd: PhantomData,
        }),
    })
}

/// A native lambda over three inputs.
pub fn make_lambda3<A, B, C, R>(
    inputs: (usize, usize, usize),
    label: &str,
    f: impl Fn(&Handle<A>, &Handle<B>, &Handle<C>) -> PcResult<R> + Send + Sync + 'static,
) -> Lambda<R>
where
    A: PcObjType,
    B: PcObjType,
    C: PcObjType,
    R: crate::column::ColValue,
{
    Lambda::from_term(LambdaTerm::Extract {
        inputs: vec![inputs.0, inputs.1, inputs.2],
        op_type: "native",
        name: label.to_string(),
        kernel: Arc::new(Extract3 {
            f,
            _pd: PhantomData,
        }),
    })
}

/// `makeLambdaFromSelf`: the identity function on an input (§4 family 4).
pub fn make_lambda_from_self(input: usize) -> Lambda<pc_object::AnyHandle> {
    Lambda::from_term(LambdaTerm::SelfRef { input })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::pc_object;

    pc_object! {
        pub struct Emp / EmpView {
            (salary, set_salary): i64,
        }
    }

    #[test]
    fn conjunct_splitting_and_input_tracking() {
        // getSalary(emp) > 50000 && name(sup) == getSupervisor(emp)
        let salary = make_lambda_from_method::<Emp, i64>(0, "getSalary", |e| e.v().salary())
            .gt_const(50_000i64);
        let sup_name = make_lambda_from_member::<Emp, String>(1, "name", |_| String::new());
        let emp_sup = make_lambda_from_method::<Emp, String>(0, "getSupervisor", |_| String::new());
        let pred = salary.and(sup_name.eq(emp_sup));

        let conj = pred.term.conjuncts();
        assert_eq!(conj.len(), 2);
        assert_eq!(conj[0].inputs(), std::collections::BTreeSet::from([0]));
        assert_eq!(conj[1].inputs(), std::collections::BTreeSet::from([0, 1]));
    }

    #[test]
    fn debug_rendering_names_the_abstractions() {
        let l = make_lambda_from_member::<Emp, i64>(0, "deptId", |_| 0).eq_const(7i64);
        let s = format!("{:?}", l.term);
        assert!(s.contains("attAccess(deptId"), "{s}");
    }
}
