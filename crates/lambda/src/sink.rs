//! `SetWriter`: the output pipe sink, with the page-lifetime model of
//! Appendix C.
//!
//! Output objects are constructed **directly on the live output page** (the
//! paper's "data should be constructed where it is ultimately needed"). When
//! the page faults with `BlockFull` mid-batch, it cannot necessarily be
//! sealed: columns still in flight may hold handles into it. Such a page
//! becomes a **zombie output page** — full, holding valid output data, but
//! pinned until the vector list that references it finishes. The paper
//! proves at most two zombie output pages can exist per pipeline;
//! [`SetWriter::release_zombies`] (called at batch boundaries) seals the
//! ones that have gone unreferenced, and [`SetWriter::finish`] asserts none
//! remain pinned.

use pc_object::{
    make_object, AllocPolicy, AllocScope, AnyHandle, AnyObj, BlockRef, Handle, PcError, PcResult,
    PcVec, SealedPage,
};

/// Accumulates objects into sealed pages, each rooted at a
/// `PcVec<Handle<AnyObj>>` — the on-page shape of a stored set.
pub struct SetWriter {
    page_size: usize,
    policy: AllocPolicy,
    current: Option<(BlockRef, Handle<PcVec<Handle<AnyObj>>>)>,
    /// Full pages that may still be referenced by in-flight columns.
    zombies: Vec<BlockRef>,
    pages: Vec<SealedPage>,
    /// Objects written so far (diagnostics).
    pub objects_written: u64,
    /// Pages sealed so far.
    pub pages_sealed: u64,
    /// High-water mark of simultaneously live zombie output pages.
    pub max_zombies: usize,
}

impl SetWriter {
    pub fn new(page_size: usize) -> Self {
        Self::with_policy(page_size, AllocPolicy::LightweightReuse)
    }

    pub fn with_policy(page_size: usize, policy: AllocPolicy) -> Self {
        SetWriter {
            page_size,
            policy,
            current: None,
            zombies: Vec::new(),
            pages: Vec::new(),
            objects_written: 0,
            pages_sealed: 0,
            max_zombies: 0,
        }
    }

    fn ensure_page(&mut self) -> PcResult<()> {
        if self.current.is_none() {
            let block = BlockRef::new(self.page_size, self.policy);
            let scope = AllocScope::install(block.clone());
            let root = make_object::<PcVec<Handle<AnyObj>>>()?;
            block.set_root(&root);
            drop(scope);
            self.current = Some((block, root));
        }
        Ok(())
    }

    /// Doubles the page size for the next live page (fault escalation: a
    /// single batch's output must eventually fit one page; the executor
    /// escalates when same-size retries keep faulting). Capped at 256 MiB,
    /// PC's default page size.
    pub fn escalate_page_size(&mut self) {
        self.page_size = (self.page_size * 2).min(256 << 20);
    }

    /// The fault path: retire the live page (seal now or zombify) and open a
    /// fresh live page.
    pub fn retire_live_page(&mut self) -> PcResult<()> {
        if let Some((block, root)) = self.current.take() {
            let empty = root.is_empty();
            drop(root);
            if !empty {
                // Attempt to seal; if columns still reference the page, park
                // it as a zombie (the clone keeps it alive).
                let keep = block.clone();
                match block.try_seal() {
                    Ok(page) => {
                        drop(keep);
                        self.pages.push(page);
                        self.pages_sealed += 1;
                    }
                    Err(PcError::BlockShared) => {
                        self.zombies.push(keep);
                        self.max_zombies = self.max_zombies.max(self.zombies.len());
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        self.ensure_page()
    }

    /// Seals every zombie page whose external references are gone. Call at
    /// vector-list (batch) boundaries — the paper's "once a vector list
    /// makes it all the way through the pipeline, all zombie output pages
    /// can be flushed".
    pub fn release_zombies(&mut self) -> PcResult<()> {
        for block in self.zombies.drain(..) {
            match block.try_seal() {
                Ok(page) => {
                    self.pages.push(page);
                    self.pages_sealed += 1;
                }
                Err(PcError::BlockShared) => {
                    // try_seal consumed our ref; the page is still pinned by
                    // someone else, so it will be unreachable to us — that
                    // would leak output. Guard: this must not happen between
                    // batches; treat as a hard error.
                    return Err(PcError::Catalog(
                        "zombie output page still pinned at batch boundary".into(),
                    ));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Number of zombie output pages currently alive (the paper caps this
    /// at two per pipeline).
    pub fn zombie_count(&self) -> usize {
        self.zombies.len()
    }

    /// The live output block (callers install it as the active allocation
    /// block while running object-producing kernels).
    pub fn live_block(&mut self) -> PcResult<BlockRef> {
        self.ensure_page()?;
        Ok(self.current.as_ref().unwrap().0.clone())
    }

    /// Appends a constructed object. Same-page handles append with zero
    /// copying; foreign handles (including handles into a zombie page) deep
    /// copy onto the live page (§6.4). Rolls the page and retries on
    /// `BlockFull`.
    pub fn write_handle(&mut self, h: &AnyHandle) -> PcResult<()> {
        self.ensure_page()?;
        let push = |cur: &(BlockRef, Handle<PcVec<Handle<AnyObj>>>), h: &AnyHandle| {
            cur.1.push(h.downcast_unchecked::<AnyObj>())
        };
        match push(self.current.as_ref().unwrap(), h) {
            Ok(()) => {
                self.objects_written += 1;
                Ok(())
            }
            Err(PcError::BlockFull { .. }) => {
                self.retire_live_page()?;
                match push(self.current.as_ref().unwrap(), h) {
                    Ok(()) => {}
                    Err(PcError::BlockFull { .. }) => {
                        // One object larger than a fresh page: grow until
                        // it fits (capped at PC's 256 MiB page size).
                        for _ in 0..12 {
                            self.escalate_page_size();
                            self.retire_live_page()?;
                            match push(self.current.as_ref().unwrap(), h) {
                                Ok(()) => break,
                                Err(PcError::BlockFull { .. }) => continue,
                                Err(e) => return Err(e),
                            }
                        }
                    }
                    Err(e) => return Err(e),
                }
                self.objects_written += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Runs `make` with the live page active and appends its result; on a
    /// `BlockFull` fault the page is retired and `make` re-run on a fresh
    /// page, escalating the page size when even an empty page cannot fit
    /// the object (objects larger than one page must eventually fit —
    /// PC's pages grow to 256 MiB).
    pub fn write_with(&mut self, mut make: impl FnMut() -> PcResult<AnyHandle>) -> PcResult<()> {
        self.ensure_page()?;
        let attempt =
            |w: &mut Self, make: &mut dyn FnMut() -> PcResult<AnyHandle>| -> PcResult<()> {
                let block = w.current.as_ref().unwrap().0.clone();
                let _scope = AllocScope::install(block);
                let h = make()?;
                w.current
                    .as_ref()
                    .unwrap()
                    .1
                    .push(h.downcast_unchecked::<AnyObj>())
            };
        for _ in 0..16 {
            match attempt(self, &mut make) {
                Ok(()) => {
                    self.objects_written += 1;
                    return Ok(());
                }
                Err(PcError::BlockFull { .. }) => {
                    // If the failing page held nothing yet, a same-size
                    // retry cannot succeed: grow.
                    let fresh = self
                        .current
                        .as_ref()
                        .map(|(_, r)| r.is_empty())
                        .unwrap_or(true);
                    if fresh {
                        self.escalate_page_size();
                    }
                    self.retire_live_page()?;
                }
                Err(e) => return Err(e),
            }
        }
        Err(PcError::Catalog(
            "object exceeds the maximum page size".into(),
        ))
    }

    /// Seals the tail page and any zombies, returning all pages.
    pub fn finish(mut self) -> PcResult<Vec<SealedPage>> {
        self.release_zombies()?;
        self.retire_tail()?;
        Ok(std::mem::take(&mut self.pages))
    }

    fn retire_tail(&mut self) -> PcResult<()> {
        if let Some((block, root)) = self.current.take() {
            let empty = root.is_empty();
            drop(root);
            if !empty {
                self.pages.push(block.try_seal()?);
                self.pages_sealed += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::pc_object;

    pc_object! {
        pub struct Point / PointView {
            (x, set_x): f64,
        }
    }

    #[test]
    fn writer_rolls_pages_and_preserves_every_object() {
        let mut w = SetWriter::new(2048); // tiny pages force rolling
        for i in 0..500 {
            w.write_with(|| {
                let p = make_object::<Point>()?;
                p.v().set_x(i as f64)?;
                Ok(p.erase())
            })
            .unwrap();
        }
        assert_eq!(w.objects_written, 500);
        let pages = w.finish().unwrap();
        assert!(
            pages.len() > 1,
            "tiny pages must roll (got {})",
            pages.len()
        );
        let mut seen = 0usize;
        let mut sum = 0.0;
        for page in pages {
            let (_b, root) = page.open().unwrap();
            let v = root.downcast::<PcVec<Handle<AnyObj>>>().unwrap();
            for h in v.iter() {
                let p: Handle<Point> = h.assume();
                sum += p.v().x();
                seen += 1;
            }
        }
        assert_eq!(seen, 500);
        assert_eq!(sum, (0..500).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn zombie_pages_appear_when_columns_pin_a_full_page() {
        let mut w = SetWriter::new(2048);
        // Simulate pipeline batches: objects allocated on the live page and
        // held in a per-batch column while writes force pages to retire.
        // At batch boundaries the column dies and zombies are released —
        // Appendix C's argument for the cap of two then applies.
        for batch in 0..5 {
            let mut column: Vec<AnyHandle> = Vec::new();
            for i in 0..40 {
                loop {
                    let block = w.live_block().unwrap();
                    let scope = AllocScope::install(block);
                    let p = make_object::<Point>().and_then(|p| {
                        p.v().set_x((batch * 40 + i) as f64)?;
                        Ok(p)
                    });
                    drop(scope);
                    match p {
                        Ok(p) => {
                            column.push(p.erase());
                            w.write_handle(&column.last().unwrap().clone()).unwrap();
                            break;
                        }
                        Err(PcError::BlockFull { .. }) => {
                            // Allocation fault: the page is pinned by the
                            // column, so retiring it must zombify.
                            w.retire_live_page().unwrap();
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
            }
            assert!(w.zombie_count() <= 2, "zombie cap exceeded within a batch");
            drop(column);
            w.release_zombies().unwrap();
            assert_eq!(w.zombie_count(), 0);
        }
        assert!(
            w.max_zombies >= 1,
            "full pages pinned by a column must zombify"
        );
        assert!(
            w.max_zombies <= 2,
            "Appendix C caps zombie output pages at 2"
        );
        let pages = w.finish().unwrap();
        let total: usize = pages
            .iter()
            .map(|p| {
                let bytes = p.to_bytes();
                let (_b, root) = SealedPage::from_bytes(&bytes).unwrap().open().unwrap();
                root.downcast::<PcVec<Handle<AnyObj>>>().unwrap().len()
            })
            .sum();
        assert_eq!(total, 200);
    }
}
