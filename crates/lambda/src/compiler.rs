//! The TCAP compiler (§5): lowers a [`ComputationGraph`] into a
//! [`TcapProgram`] plus a *stage library* binding every `(computation,
//! stage)` name pair to its compiled kernel.
//!
//! Join planning happens here in the spirit of §4: the user never names a
//! join order or algorithm. The compiler analyzes the join's selection
//! lambda, classifies equality conjuncts linking two inputs as join keys,
//! plans a left-deep cascade of hash joins, and re-emits **all** conjuncts
//! after the join as residual checks ("all selection predicates are by
//! default evaluated after the join", §7) — the optimizer then pushes
//! single-input conjuncts back below the join.

use crate::agg::ErasedAgg;
use crate::computation::{CompKind, ComputationGraph};
use crate::kernel::{
    BinaryKernel, ColumnKernel, ConstCmpKernel, FlatMapKernel, HashKernel, NotKernel,
};
use crate::lambda::LambdaTerm;
use pc_object::{PcError, PcResult};
use pc_tcap::ir::{ColRef, TcapOp, TcapProgram, TcapStmt, VecListDecl};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A compiled pipeline stage.
#[derive(Clone)]
pub enum StageKernel {
    Map(Arc<dyn ColumnKernel>),
    FlatMap(Arc<dyn FlatMapKernel>),
}

/// Maps `(computation name, stage name)` to compiled kernels — what §5.3's
/// template metaprogramming produces in the C++ system.
#[derive(Default, Clone)]
pub struct StageLibrary {
    stages: HashMap<(String, String), StageKernel>,
}

impl StageLibrary {
    pub fn register(&mut self, comp: &str, stage: &str, k: StageKernel) {
        self.stages.insert((comp.to_string(), stage.to_string()), k);
    }

    pub fn get(&self, comp: &str, stage: &str) -> Option<&StageKernel> {
        self.stages.get(&(comp.to_string(), stage.to_string()))
    }

    pub fn len(&self) -> usize {
        self.stages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// The result of compilation: a TCAP program, its stage library, and the
/// aggregation engines referenced by AGGREGATE statements.
pub struct CompiledQuery {
    pub tcap: TcapProgram,
    pub stages: StageLibrary,
    pub aggs: HashMap<String, Arc<dyn ErasedAgg>>,
}

struct CurList {
    name: String,
    cols: Vec<String>,
}

struct Compiler {
    stmts: Vec<TcapStmt>,
    stages: StageLibrary,
    aggs: HashMap<String, Arc<dyn ErasedAgg>>,
    lists: usize,
}

impl Compiler {
    fn fresh_list(&mut self, prefix: &str) -> String {
        self.lists += 1;
        format!("{prefix}_{}", self.lists)
    }

    /// Emits the APPLY chain for a lambda term over `cur`, returning the
    /// column holding the term's value. `input_col` maps a computation input
    /// index to the column carrying that input's objects.
    fn emit_term(
        &mut self,
        term: &LambdaTerm,
        comp: &str,
        n: &mut usize,
        cur: &mut CurList,
        input_col: &dyn Fn(usize) -> String,
    ) -> PcResult<String> {
        match term {
            LambdaTerm::SelfRef { input } => Ok(input_col(*input)),
            LambdaTerm::Extract {
                inputs,
                op_type,
                name,
                kernel,
            } => {
                *n += 1;
                let stage = match *op_type {
                    "attAccess" => format!("att_acc_{n}"),
                    "methodCall" => format!("method_call_{n}"),
                    _ => format!("native_{n}"),
                };
                let meta_key = match *op_type {
                    "attAccess" => "attName",
                    "methodCall" => "methodName",
                    _ => "label",
                };
                let new_col = format!("mt{n}");
                let in_cols: Vec<String> = inputs.iter().map(|i| input_col(*i)).collect();
                self.apply(
                    cur,
                    comp,
                    &stage,
                    &in_cols,
                    &new_col,
                    vec![
                        ("type".into(), op_type.to_string()),
                        (meta_key.into(), name.clone()),
                    ],
                );
                self.stages
                    .register(comp, &stage, StageKernel::Map(kernel.clone()));
                Ok(new_col)
            }
            LambdaTerm::Binary { op, lhs, rhs } => {
                let lc = self.emit_term(lhs, comp, n, cur, input_col)?;
                let rc = self.emit_term(rhs, comp, n, cur, input_col)?;
                *n += 1;
                let stage = format!("{}_{n}", op.tcap_name());
                let new_col = format!("bl{n}");
                self.apply(
                    cur,
                    comp,
                    &stage,
                    &[lc, rc],
                    &new_col,
                    vec![
                        ("type".into(), op.meta_type().to_string()),
                        ("op".into(), op.tcap_name().to_string()),
                    ],
                );
                self.stages.register(
                    comp,
                    &stage,
                    StageKernel::Map(Arc::new(BinaryKernel { op: *op })),
                );
                Ok(new_col)
            }
            LambdaTerm::Not { inner } => {
                let ic = self.emit_term(inner, comp, n, cur, input_col)?;
                *n += 1;
                let stage = format!("!_{n}");
                let new_col = format!("bl{n}");
                self.apply(
                    cur,
                    comp,
                    &stage,
                    &[ic],
                    &new_col,
                    vec![("type".into(), "bool_not".to_string())],
                );
                self.stages
                    .register(comp, &stage, StageKernel::Map(Arc::new(NotKernel)));
                Ok(new_col)
            }
            LambdaTerm::ConstCmp { op, value, inner } => {
                let ic = self.emit_term(inner, comp, n, cur, input_col)?;
                *n += 1;
                let stage = format!("{}c_{n}", op.tcap_name());
                let new_col = format!("bl{n}");
                self.apply(
                    cur,
                    comp,
                    &stage,
                    &[ic],
                    &new_col,
                    vec![
                        ("type".into(), "const_comparison".to_string()),
                        ("op".into(), op.tcap_name().to_string()),
                        ("value".into(), value.to_string()),
                    ],
                );
                self.stages.register(
                    comp,
                    &stage,
                    StageKernel::Map(Arc::new(ConstCmpKernel {
                        op: *op,
                        value: value.clone(),
                    })),
                );
                Ok(new_col)
            }
        }
    }

    /// Appends one APPLY statement and advances `cur`.
    fn apply(
        &mut self,
        cur: &mut CurList,
        comp: &str,
        stage: &str,
        in_cols: &[String],
        new_col: &str,
        meta: Vec<(String, String)>,
    ) {
        let out = self.fresh_list("W");
        let mut out_cols = cur.cols.clone();
        out_cols.push(new_col.to_string());
        self.stmts.push(TcapStmt {
            output: VecListDecl {
                name: out.clone(),
                cols: out_cols.clone(),
            },
            op: TcapOp::Apply {
                input: ColRef {
                    list: cur.name.clone(),
                    cols: in_cols.to_vec(),
                },
                copy: ColRef {
                    list: cur.name.clone(),
                    cols: cur.cols.clone(),
                },
                computation: comp.to_string(),
                stage: stage.to_string(),
                meta,
            },
        });
        cur.name = out;
        cur.cols = out_cols;
    }

    /// Appends a FILTER keeping only `keep` columns.
    fn filter(&mut self, cur: &mut CurList, comp: &str, bool_col: &str, keep: &[String]) {
        let out = self.fresh_list("Flt");
        self.stmts.push(TcapStmt {
            output: VecListDecl {
                name: out.clone(),
                cols: keep.to_vec(),
            },
            op: TcapOp::Filter {
                bool_col: ColRef {
                    list: cur.name.clone(),
                    cols: vec![bool_col.to_string()],
                },
                copy: ColRef {
                    list: cur.name.clone(),
                    cols: keep.to_vec(),
                },
                computation: comp.to_string(),
                meta: vec![],
            },
        });
        cur.name = out;
        cur.cols = keep.to_vec();
    }

    /// Appends a HASH over `key_col`, keeping `keep` columns + the hash.
    fn hash(&mut self, cur: &mut CurList, comp: &str, key_col: &str, n: &mut usize) -> String {
        *n += 1;
        let hash_col = format!("hash{n}");
        let stage = format!("hash_{n}");
        let out = self.fresh_list("H");
        let mut out_cols = cur.cols.clone();
        out_cols.push(hash_col.clone());
        self.stmts.push(TcapStmt {
            output: VecListDecl {
                name: out.clone(),
                cols: out_cols.clone(),
            },
            op: TcapOp::Hash {
                input: ColRef {
                    list: cur.name.clone(),
                    cols: vec![key_col.to_string()],
                },
                copy: ColRef {
                    list: cur.name.clone(),
                    cols: cur.cols.clone(),
                },
                computation: comp.to_string(),
                meta: vec![("type".into(), "hashOne".into())],
            },
        });
        self.stages
            .register(comp, &stage, StageKernel::Map(Arc::new(HashKernel)));
        cur.name = out;
        cur.cols = out_cols;
        hash_col
    }
}

/// Is this equality conjunct a join-key candidate linking two inputs?
/// Returns `(lhs_input, rhs_input, lhs_term, rhs_term)`.
fn key_conjunct(t: &LambdaTerm) -> Option<(usize, usize, &LambdaTerm, &LambdaTerm)> {
    if let LambdaTerm::Binary {
        op: crate::lambda::BinOp::Eq,
        lhs,
        rhs,
    } = t
    {
        let li = lhs.inputs();
        let ri = rhs.inputs();
        if li.len() == 1 && ri.len() == 1 && li != ri {
            let l = *li.iter().next().unwrap();
            let r = *ri.iter().next().unwrap();
            return Some((l, r, lhs, rhs));
        }
    }
    None
}

/// Compiles a computation graph to TCAP plus its stage library.
pub fn compile(graph: &ComputationGraph) -> PcResult<CompiledQuery> {
    let mut c = Compiler {
        stmts: Vec::new(),
        stages: StageLibrary::default(),
        aggs: HashMap::new(),
        lists: 0,
    };
    // (list name, object column) produced by each node.
    let mut outputs: Vec<Option<(String, String)>> = vec![None; graph.nodes.len()];

    for (id, node) in graph.nodes.iter().enumerate() {
        let comp = node.name.clone();
        match &node.kind {
            CompKind::Reader { db, set } => {
                let list = format!("In_{id}");
                let col = format!("in{id}");
                c.stmts.push(TcapStmt {
                    output: VecListDecl {
                        name: list.clone(),
                        cols: vec![col.clone()],
                    },
                    op: TcapOp::Input {
                        db: db.clone(),
                        set: set.clone(),
                        computation: comp,
                        meta: vec![],
                    },
                });
                outputs[id] = Some((list, col));
            }
            CompKind::Selection {
                input,
                selection,
                projection,
            } => {
                let (in_list, in_col) = outputs[*input].clone().ok_or_else(|| dangling(*input))?;
                let mut cur = CurList {
                    name: in_list,
                    cols: vec![in_col.clone()],
                };
                let mut n = 0;
                let col_of = {
                    let in_col = in_col.clone();
                    move |_i: usize| in_col.clone()
                };
                let bl = c.emit_term(selection, &comp, &mut n, &mut cur, &col_of)?;
                c.filter(&mut cur, &comp, &bl, &[in_col.clone()]);
                let out_col = c.emit_term(projection, &comp, &mut n, &mut cur, &col_of)?;
                outputs[id] = Some((cur.name, out_col));
            }
            CompKind::MultiSelection {
                input,
                selection,
                flatmap,
                label,
            } => {
                let (in_list, in_col) = outputs[*input].clone().ok_or_else(|| dangling(*input))?;
                let mut cur = CurList {
                    name: in_list,
                    cols: vec![in_col.clone()],
                };
                let mut n = 0;
                let col_of = {
                    let in_col = in_col.clone();
                    move |_i: usize| in_col.clone()
                };
                if let Some(sel) = selection {
                    let bl = c.emit_term(sel, &comp, &mut n, &mut cur, &col_of)?;
                    c.filter(&mut cur, &comp, &bl, &[in_col.clone()]);
                }
                let stage = "flat_1".to_string();
                let out_col = format!("out{id}");
                let out = c.fresh_list("FM");
                c.stmts.push(TcapStmt {
                    output: VecListDecl {
                        name: out.clone(),
                        cols: vec![out_col.clone()],
                    },
                    op: TcapOp::FlatMap {
                        input: ColRef {
                            list: cur.name.clone(),
                            cols: vec![in_col.clone()],
                        },
                        copy: ColRef {
                            list: cur.name.clone(),
                            cols: vec![],
                        },
                        computation: comp.clone(),
                        stage: stage.clone(),
                        meta: vec![
                            ("type".into(), "multiSelect".into()),
                            ("label".into(), label.clone()),
                        ],
                    },
                });
                c.stages
                    .register(&comp, &stage, StageKernel::FlatMap(flatmap.clone()));
                outputs[id] = Some((out, out_col));
            }
            CompKind::Join {
                inputs,
                selection,
                projection,
            } => {
                let compiled =
                    compile_join(&mut c, id, &comp, inputs, selection, projection, &outputs)?;
                outputs[id] = Some(compiled);
            }
            CompKind::Aggregate { input, agg } => {
                let (in_list, in_col) = outputs[*input].clone().ok_or_else(|| dangling(*input))?;
                let out = format!("Ag_{id}");
                let out_col = format!("out{id}");
                c.stmts.push(TcapStmt {
                    output: VecListDecl {
                        name: out.clone(),
                        cols: vec![out_col.clone()],
                    },
                    op: TcapOp::Aggregate {
                        key: ColRef {
                            list: in_list.clone(),
                            cols: vec![in_col.clone()],
                        },
                        value: ColRef {
                            list: in_list,
                            cols: vec![in_col],
                        },
                        computation: comp.clone(),
                        meta: vec![("outType".into(), agg.out_type())],
                    },
                });
                c.aggs.insert(comp.clone(), agg.clone());
                outputs[id] = Some((out, out_col));
            }
            CompKind::Writer { db, set, input } => {
                let (in_list, in_col) = outputs[*input].clone().ok_or_else(|| dangling(*input))?;
                c.stmts.push(TcapStmt {
                    output: VecListDecl {
                        name: format!("Out_{id}"),
                        cols: vec![],
                    },
                    op: TcapOp::Output {
                        input: ColRef {
                            list: in_list,
                            cols: vec![in_col],
                        },
                        db: db.clone(),
                        set: set.clone(),
                        computation: comp,
                        meta: vec![],
                    },
                });
            }
        }
    }

    Ok(CompiledQuery {
        tcap: TcapProgram::new(c.stmts),
        stages: c.stages,
        aggs: c.aggs,
    })
}

fn dangling(input: usize) -> PcError {
    PcError::Catalog(format!("computation input {input} has no compiled output"))
}

/// Plans and emits an n-ary hash join: key extraction + HASH per side, a
/// left-deep JOIN cascade, then all conjuncts re-checked post-join, then
/// the projection.
fn compile_join(
    c: &mut Compiler,
    id: usize,
    comp: &str,
    inputs: &[usize],
    selection: &LambdaTerm,
    projection: &LambdaTerm,
    outputs: &[Option<(String, String)>],
) -> PcResult<(String, String)> {
    let n_in = inputs.len();
    let conjuncts = selection.conjuncts();
    let mut keys: Vec<(usize, usize, &LambdaTerm, &LambdaTerm)> = Vec::new();
    for t in &conjuncts {
        if let Some(k) = key_conjunct(t) {
            keys.push(k);
        }
    }
    if keys.is_empty() {
        return Err(PcError::Catalog(format!(
            "join {comp}: selection has no equality conjunct linking two inputs"
        )));
    }

    // Object column name for each join input position.
    let in_cols: Vec<String> = (0..n_in).map(|p| format!("j{id}i{p}")).collect();
    // Rebind each input's column to a join-local alias via a SelfRef apply?
    // Simpler: reuse the producer's column name directly.
    let mut side: Vec<(String, String)> = Vec::new(); // (list, obj col) per position
    for (p, node) in inputs.iter().enumerate() {
        let (l, col) = outputs[*node].clone().ok_or_else(|| dangling(*node))?;
        let _ = &in_cols[p];
        side.push((l, col));
    }

    let mut n = 0usize;
    // Left-deep planning: start from position 0.
    let mut joined: BTreeSet<usize> = BTreeSet::from([0]);
    let mut used_keys: Vec<usize> = Vec::new();
    // Composite state: current list + the obj col of every joined position.
    let mut cur = CurList {
        name: side[0].0.clone(),
        cols: vec![side[0].1.clone()],
    };
    let col_of_pos = |side: &[(String, String)], p: usize| side[p].1.clone();

    while joined.len() < n_in {
        // Pick an unused key conjunct connecting the joined set to a new input.
        let pick = keys.iter().enumerate().find(|(ki, (l, r, _, _))| {
            !used_keys.contains(ki)
                && ((joined.contains(l) && !joined.contains(r))
                    || (joined.contains(r) && !joined.contains(l)))
        });
        let Some((ki, &(l, r, lt, rt))) = pick else {
            return Err(PcError::Catalog(format!(
                "join {comp}: inputs are not connected by equality conjuncts (no key links {joined:?} to the rest)"
            )));
        };
        used_keys.push(ki);
        let (in_joined, newcomer, jt, nt) = if joined.contains(&l) {
            (l, r, lt, rt)
        } else {
            (r, l, rt, lt)
        };
        let _ = in_joined;

        // Build side (the already-joined composite): extract key + hash.
        let side_ref = side.clone();
        let colmap = move |i: usize| col_of_pos(&side_ref, i);
        let lk = c.emit_term(jt, comp, &mut n, &mut cur, &colmap)?;
        let lh = c.hash(&mut cur, comp, &lk, &mut n);
        let left_list = cur.name.clone();
        let left_objs: Vec<String> = joined.iter().map(|p| side[*p].1.clone()).collect();

        // Probe side (the newcomer input).
        let mut rcur = CurList {
            name: side[newcomer].0.clone(),
            cols: vec![side[newcomer].1.clone()],
        };
        let side_ref = side.clone();
        let colmap = move |i: usize| col_of_pos(&side_ref, i);
        let rk = c.emit_term(nt, comp, &mut n, &mut rcur, &colmap)?;
        let rh = c.hash(&mut rcur, comp, &rk, &mut n);

        // JOIN statement.
        let out = c.fresh_list("J");
        let mut out_cols = left_objs.clone();
        out_cols.push(side[newcomer].1.clone());
        c.stmts.push(TcapStmt {
            output: VecListDecl {
                name: out.clone(),
                cols: out_cols.clone(),
            },
            op: TcapOp::Join {
                lhs_hash: ColRef {
                    list: left_list.clone(),
                    cols: vec![lh],
                },
                lhs_copy: ColRef {
                    list: left_list,
                    cols: left_objs,
                },
                rhs_hash: ColRef {
                    list: rcur.name.clone(),
                    cols: vec![rh],
                },
                rhs_copy: ColRef {
                    list: rcur.name.clone(),
                    cols: vec![side[newcomer].1.clone()],
                },
                computation: comp.to_string(),
                meta: vec![],
            },
        });
        joined.insert(newcomer);
        cur = CurList {
            name: out,
            cols: out_cols,
        };
    }

    // Residual: re-check every conjunct post-join (hash collisions and
    // non-key predicates); single-input conjuncts get pushed down later by
    // the optimizer.
    let side_ref = side.clone();
    let colmap = move |i: usize| col_of_pos(&side_ref, i);
    let mut bl: Option<String> = None;
    for t in &conjuncts {
        let b = c.emit_term(t, comp, &mut n, &mut cur, &colmap)?;
        bl = Some(match bl {
            None => b,
            Some(prev) => {
                n += 1;
                let stage = format!("&&_{n}");
                let new_col = format!("bl{n}");
                c.apply(
                    &mut cur,
                    comp,
                    &stage,
                    &[prev, b],
                    &new_col,
                    vec![
                        ("type".into(), "bool_and".into()),
                        ("op".into(), "&&".into()),
                    ],
                );
                c.stages.register(
                    comp,
                    &stage,
                    StageKernel::Map(Arc::new(BinaryKernel {
                        op: crate::lambda::BinOp::And,
                    })),
                );
                new_col
            }
        });
    }
    let objcols: Vec<String> = (0..n_in).map(|p| side[p].1.clone()).collect();
    c.filter(&mut cur, comp, &bl.unwrap(), &objcols);

    // Projection.
    let side_ref = side.clone();
    let colmap = move |i: usize| col_of_pos(&side_ref, i);
    let out_col = c.emit_term(projection, comp, &mut n, &mut cur, &colmap)?;
    Ok((cur.name, out_col))
}
