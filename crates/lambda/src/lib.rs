//! # pc-lambda — PlinyCompute's lambda calculus and Computation API
//!
//! This crate implements §4 of the paper: the domain-specific lambda
//! calculus a PC programmer uses to *describe* computations (not run them),
//! the `Computation` graph types (`SelectionComp`, `JoinComp`,
//! `AggregateComp`, `MultiSelectionComp`), and the **TCAP compiler** that
//! lowers a computation graph into a [`pc_tcap::TcapProgram`] plus a *stage
//! library* mapping every TCAP stage name to compiled, vectorized kernel
//! code.
//!
//! A lambda term is built from the paper's abstraction families —
//! [`make_lambda_from_member`], [`make_lambda_from_method`],
//! [`make_lambda`] (native code), [`make_lambda_from_self`] — and composed
//! with higher-order functions (`.eq()`, `.gt()`, `.and()`, arithmetic).
//! Crucially, a term carries **two** things:
//!
//! 1. *metadata* (`attName`, `methodName`, operator kinds) that the TCAP
//!    optimizer reasons over, and
//! 2. a *kernel*: a monomorphized batch function — the Rust analogue of the
//!    template-metaprogramming-generated pipeline stages of §5.3, paying one
//!    dynamic dispatch per vector, none per object.
//!
//! A programmer who hides everything inside [`make_lambda`] gets a working
//! but unoptimizable plan — exactly the trade-off §4 describes.

pub mod agg;
pub mod column;
pub mod compiler;
pub mod computation;
pub mod kernel;
pub mod lambda;
pub mod sink;

pub use agg::{
    AggKey, AggPage, AggSinkStats, AggregateSpec, ErasedAgg, ErasedAggMerger, ErasedAggSink,
    SpillCtx,
};
pub use column::{ColValue, Column, ColumnPool};
pub use compiler::{compile, CompiledQuery, StageKernel, StageLibrary};
pub use computation::{CompKind, Computation, ComputationGraph, NodeId};
pub use kernel::{for_each_sel, sel_len, ColumnKernel, ExecCtx, FlatMapKernel};
pub use lambda::{
    make_lambda, make_lambda2, make_lambda3, make_lambda_from_member, make_lambda_from_method,
    make_lambda_from_self, BinOp, ConstVal, Lambda, LambdaTerm,
};
pub use sink::SetWriter;
