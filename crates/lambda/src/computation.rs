//! The `Computation` graph a PC user builds (§4): readers, writers,
//! selections, multi-selections, joins, aggregations.
//!
//! Unlike a Spark-style dataflow DAG, the join here is a *single* n-ary
//! computation customized by lambda terms — the system, not the user,
//! decides join order and algorithms (§1's "declarative in the large").

use crate::agg::{AggEngine, AggregateSpec, ErasedAgg};
use crate::column::ColValue;
use crate::kernel::FlatMapKernel;
use crate::lambda::{Lambda, LambdaTerm};
use std::sync::Arc;

/// Index of a computation in a [`ComputationGraph`].
pub type NodeId = usize;

/// One computation node.
pub struct Computation {
    /// Unique name, e.g. `Sel_2`, `Join_3` — referenced from TCAP.
    pub name: String,
    pub kind: CompKind,
}

/// The computation families of §4.
pub enum CompKind {
    /// Scans a stored set (`ObjectReader`).
    Reader { db: String, set: String },
    /// Writes a set (`Writer`).
    Writer {
        db: String,
        set: String,
        input: NodeId,
    },
    /// Relational selection + projection (`SelectionComp`).
    Selection {
        input: NodeId,
        selection: LambdaTerm,
        projection: LambdaTerm,
    },
    /// Selection with a set-valued projection (`MultiSelectionComp`).
    MultiSelection {
        input: NodeId,
        selection: Option<LambdaTerm>,
        flatmap: Arc<dyn FlatMapKernel>,
        label: String,
    },
    /// N-ary join (`JoinComp`): the selection lambda supplies both the join
    /// keys (equality conjuncts linking two inputs) and residual predicates.
    Join {
        inputs: Vec<NodeId>,
        selection: LambdaTerm,
        projection: LambdaTerm,
    },
    /// Aggregation (`AggregateComp`).
    Aggregate {
        input: NodeId,
        agg: Arc<dyn ErasedAgg>,
    },
}

/// A user-assembled graph of computations.
#[derive(Default)]
pub struct ComputationGraph {
    pub nodes: Vec<Computation>,
}

impl ComputationGraph {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, prefix: &str, kind: CompKind) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Computation {
            name: format!("{prefix}_{id}"),
            kind,
        });
        id
    }

    /// Adds a set reader.
    pub fn reader(&mut self, db: &str, set: &str) -> NodeId {
        self.push(
            "Reader",
            CompKind::Reader {
                db: db.to_string(),
                set: set.to_string(),
            },
        )
    }

    /// Adds a `SelectionComp` with `selection` predicate and `projection`
    /// (input index 0 refers to the node's single input).
    pub fn selection<R: ColValue>(
        &mut self,
        input: NodeId,
        selection: Lambda<bool>,
        projection: Lambda<R>,
    ) -> NodeId {
        assert!(input < self.nodes.len(), "selection input out of range");
        self.push(
            "Sel",
            CompKind::Selection {
                input,
                selection: selection.term,
                projection: projection.term,
            },
        )
    }

    /// Adds a `MultiSelectionComp`: `flatmap` emits zero or more output
    /// objects per input object.
    pub fn multi_selection(
        &mut self,
        input: NodeId,
        selection: Option<Lambda<bool>>,
        label: &str,
        flatmap: Arc<dyn FlatMapKernel>,
    ) -> NodeId {
        assert!(
            input < self.nodes.len(),
            "multi-selection input out of range"
        );
        self.push(
            "MSel",
            CompKind::MultiSelection {
                input,
                selection: selection.map(|l| l.term),
                flatmap,
                label: label.to_string(),
            },
        )
    }

    /// Adds an n-ary `JoinComp`. Lambda input indices refer to positions in
    /// `inputs`. The selection must contain at least one equality conjunct
    /// per join step linking two inputs; PC extracts join keys from it.
    pub fn join<R: ColValue>(
        &mut self,
        inputs: &[NodeId],
        selection: Lambda<bool>,
        projection: Lambda<R>,
    ) -> NodeId {
        assert!(inputs.len() >= 2, "a join needs at least two inputs");
        for &i in inputs {
            assert!(i < self.nodes.len(), "join input out of range");
        }
        self.push(
            "Join",
            CompKind::Join {
                inputs: inputs.to_vec(),
                selection: selection.term,
                projection: projection.term,
            },
        )
    }

    /// Adds an `AggregateComp` from a typed [`AggregateSpec`].
    pub fn aggregate<S: AggregateSpec>(&mut self, input: NodeId, spec: S) -> NodeId {
        self.aggregate_erased(input, Arc::new(AggEngine::new(spec)))
    }

    /// Adds an `AggregateComp` from an already-erased engine (the lowering
    /// path of the typed `Dataset` layer, which erases the spec when the
    /// element types are still in scope).
    pub fn aggregate_erased(&mut self, input: NodeId, agg: Arc<dyn ErasedAgg>) -> NodeId {
        assert!(input < self.nodes.len(), "aggregate input out of range");
        self.push("Agg", CompKind::Aggregate { input, agg })
    }

    /// Adds a set writer (a query sink).
    pub fn write(&mut self, input: NodeId, db: &str, set: &str) -> NodeId {
        assert!(input < self.nodes.len(), "writer input out of range");
        self.push(
            "Writer",
            CompKind::Writer {
                db: db.to_string(),
                set: set.to_string(),
                input,
            },
        )
    }

    /// All writer node ids (the roots the scheduler executes).
    pub fn writers(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, CompKind::Writer { .. }))
            .map(|(i, _)| i)
            .collect()
    }
}
