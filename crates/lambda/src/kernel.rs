//! Pipeline-stage kernels: the compiled code behind TCAP `APPLY` stages.
//!
//! In the C++ system, §5.3's template metaprogramming generates a native
//! function per (operation, type) pair so that pushing a vector through a
//! stage makes no per-object virtual calls. The Rust analogue: every kernel
//! is a monomorphized generic struct behind an `Arc<dyn ColumnKernel>`; the
//! engine pays one dynamic dispatch per *batch* and the inner loop is fully
//! inlined by the compiler.

use crate::column::{ColValue, Column};
use pc_object::{hash as pc_hash, BlockRef, Handle, PcObjType, PcResult};
use std::marker::PhantomData;

/// Per-batch execution context handed to kernels: the current live output
/// page (kernels that construct objects allocate directly on it — Appendix
/// C's "in-place data allocation of output data").
pub struct ExecCtx {
    /// The live output block; also installed as the thread's active block.
    pub out: BlockRef,
    /// Rows processed so far (diagnostics).
    pub rows: u64,
    /// Expected total output rows for a set-valued (flat-map) kernel, 0 when
    /// unknown. The executor predicts it from the fan-out ratio the calling
    /// thread observed on earlier morsels; kernels may use it to pre-reserve
    /// output capacity. Purely an allocation hint — it never changes what a
    /// kernel produces.
    pub fanout_hint: usize,
}

impl ExecCtx {
    pub fn new(out: BlockRef) -> Self {
        ExecCtx {
            out,
            rows: 0,
            fanout_hint: 0,
        }
    }
}

/// A vectorized pipeline stage: consumes input columns, appends one column.
///
/// `sel` is the batch's selection vector (§5.2 / Appendix C's "vector lists
/// carry only surviving rows"): when `Some`, the kernel must read input row
/// `sel[i]` for output row `i` and produce a **dense** column of
/// `sel.len()` rows, touching no dead row — object-producing kernels must
/// never allocate output objects for rows a FILTER already dropped. When
/// `None`, inputs are dense and processed in full.
pub trait ColumnKernel: Send + Sync {
    fn apply(&self, inputs: &[&Column], sel: Option<&[u32]>, ctx: &mut ExecCtx)
        -> PcResult<Column>;
}

/// A set-valued stage (lowers `MultiSelectionComp`): each input row yields
/// zero or more output values; returns the output column plus per-row
/// counts used to replicate the copied-through columns. Under a selection
/// vector, `counts` has one entry per *selected* row.
pub trait FlatMapKernel: Send + Sync {
    fn apply(
        &self,
        inputs: &[&Column],
        sel: Option<&[u32]>,
        ctx: &mut ExecCtx,
    ) -> PcResult<(Column, Vec<u32>)>;
}

/// Number of live rows in a batch of `len` base rows under `sel`.
pub fn sel_len(len: usize, sel: Option<&[u32]>) -> usize {
    sel.map(|s| s.len()).unwrap_or(len)
}

/// Drives `f` over the live row indices of a `len`-row batch: `0..len` when
/// `sel` is `None`, the selected base rows otherwise. Two monomorphic loops
/// so the dense path stays free of per-row indirection.
#[inline]
pub fn for_each_sel(
    len: usize,
    sel: Option<&[u32]>,
    mut f: impl FnMut(usize) -> PcResult<()>,
) -> PcResult<()> {
    match sel {
        None => {
            for i in 0..len {
                f(i)?;
            }
        }
        Some(s) => {
            for &i in s {
                f(i as usize)?;
            }
        }
    }
    Ok(())
}

// ------------------------------------------------------------- extraction

/// One-input extraction kernel (member access / method call / native code).
pub struct Extract1<T: PcObjType, R, F> {
    pub f: F,
    pub _pd: PhantomData<fn(&Handle<T>) -> R>,
}

impl<T, R, F> ColumnKernel for Extract1<T, R, F>
where
    T: PcObjType,
    R: ColValue,
    F: Fn(&Handle<T>) -> PcResult<R> + Send + Sync + 'static,
{
    fn apply(
        &self,
        inputs: &[&Column],
        sel: Option<&[u32]>,
        ctx: &mut ExecCtx,
    ) -> PcResult<Column> {
        let objs = inputs[0].as_obj()?;
        let n = sel_len(objs.len(), sel);
        let mut out = Vec::with_capacity(n);
        for_each_sel(objs.len(), sel, |i| {
            out.push((self.f)(&objs[i].downcast_unchecked::<T>())?);
            Ok(())
        })?;
        ctx.rows += n as u64;
        Ok(R::collect(out))
    }
}

/// Two-input extraction kernel (e.g. a join projection combining two
/// objects into an output object).
pub struct Extract2<A: PcObjType, B: PcObjType, R, F> {
    pub f: F,
    pub _pd: PhantomData<fn(&Handle<A>, &Handle<B>) -> R>,
}

impl<A, B, R, F> ColumnKernel for Extract2<A, B, R, F>
where
    A: PcObjType,
    B: PcObjType,
    R: ColValue,
    F: Fn(&Handle<A>, &Handle<B>) -> PcResult<R> + Send + Sync + 'static,
{
    fn apply(
        &self,
        inputs: &[&Column],
        sel: Option<&[u32]>,
        ctx: &mut ExecCtx,
    ) -> PcResult<Column> {
        let a = inputs[0].as_obj()?;
        let b = inputs[1].as_obj()?;
        debug_assert_eq!(a.len(), b.len());
        let n = sel_len(a.len(), sel);
        let mut out = Vec::with_capacity(n);
        for_each_sel(a.len(), sel, |i| {
            out.push((self.f)(
                &a[i].downcast_unchecked::<A>(),
                &b[i].downcast_unchecked::<B>(),
            )?);
            Ok(())
        })?;
        ctx.rows += n as u64;
        Ok(R::collect(out))
    }
}

/// Three-input extraction kernel.
pub struct Extract3<A: PcObjType, B: PcObjType, C: PcObjType, R, F> {
    pub f: F,
    #[allow(clippy::type_complexity)]
    pub _pd: PhantomData<fn(&Handle<A>, &Handle<B>, &Handle<C>) -> R>,
}

impl<A, B, C, R, F> ColumnKernel for Extract3<A, B, C, R, F>
where
    A: PcObjType,
    B: PcObjType,
    C: PcObjType,
    R: ColValue,
    F: Fn(&Handle<A>, &Handle<B>, &Handle<C>) -> PcResult<R> + Send + Sync + 'static,
{
    fn apply(
        &self,
        inputs: &[&Column],
        sel: Option<&[u32]>,
        ctx: &mut ExecCtx,
    ) -> PcResult<Column> {
        let a = inputs[0].as_obj()?;
        let b = inputs[1].as_obj()?;
        let c = inputs[2].as_obj()?;
        let n = sel_len(a.len(), sel);
        let mut out = Vec::with_capacity(n);
        for_each_sel(a.len(), sel, |i| {
            out.push((self.f)(
                &a[i].downcast_unchecked::<A>(),
                &b[i].downcast_unchecked::<B>(),
                &c[i].downcast_unchecked::<C>(),
            )?);
            Ok(())
        })?;
        ctx.rows += n as u64;
        Ok(R::collect(out))
    }
}

/// One-input flat-map kernel.
pub struct FlatMap1<T: PcObjType, R, F> {
    pub f: F,
    pub _pd: PhantomData<fn(&Handle<T>) -> Vec<R>>,
}

impl<T, R, F> FlatMapKernel for FlatMap1<T, R, F>
where
    T: PcObjType,
    R: ColValue,
    F: Fn(&Handle<T>) -> PcResult<Vec<R>> + Send + Sync + 'static,
{
    fn apply(
        &self,
        inputs: &[&Column],
        sel: Option<&[u32]>,
        ctx: &mut ExecCtx,
    ) -> PcResult<(Column, Vec<u32>)> {
        let objs = inputs[0].as_obj()?;
        let n = sel_len(objs.len(), sel);
        // Growing `out` doubling-by-doubling re-moves every element already
        // produced; the executor's fan-out hint (observed ratio on this
        // thread's previous morsels) sizes it once up front.
        let mut out = Vec::with_capacity(ctx.fanout_hint);
        let mut counts = Vec::with_capacity(n);
        for_each_sel(objs.len(), sel, |i| {
            let vals = (self.f)(&objs[i].downcast_unchecked::<T>())?;
            counts.push(vals.len() as u32);
            out.extend(vals);
            Ok(())
        })?;
        ctx.rows += n as u64;
        Ok((R::collect(out), counts))
    }
}

// ------------------------------------------------------------ binary ops

/// Operator kinds for two-column kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpKind {
    Eq,
    Ne,
    Gt,
    Lt,
    Ge,
    Le,
    And,
    Or,
    Add,
    Sub,
    Mul,
}

impl BinOpKind {
    pub fn tcap_name(&self) -> &'static str {
        match self {
            BinOpKind::Eq => "==",
            BinOpKind::Ne => "!=",
            BinOpKind::Gt => ">",
            BinOpKind::Lt => "<",
            BinOpKind::Ge => ">=",
            BinOpKind::Le => "<=",
            BinOpKind::And => "&&",
            BinOpKind::Or => "||",
            BinOpKind::Add => "+",
            BinOpKind::Sub => "-",
            BinOpKind::Mul => "*",
        }
    }

    pub fn meta_type(&self) -> &'static str {
        match self {
            BinOpKind::Eq => "equalityCheck",
            BinOpKind::Ne | BinOpKind::Gt | BinOpKind::Lt | BinOpKind::Ge | BinOpKind::Le => {
                "comparison"
            }
            BinOpKind::And => "bool_and",
            BinOpKind::Or => "bool_or",
            BinOpKind::Add | BinOpKind::Sub | BinOpKind::Mul => "arithmetic",
        }
    }
}

macro_rules! cmp_arms {
    ($a:expr, $b:expr, $sel:expr, $op:tt) => {{
        match $sel {
            None => Column::Bool($a.iter().zip($b.iter()).map(|(x, y)| x $op y).collect()),
            Some(s) => Column::Bool(
                s.iter()
                    .map(|&i| $a[i as usize] $op $b[i as usize])
                    .collect(),
            ),
        }
    }};
}

macro_rules! arith_arms {
    ($a:expr, $b:expr, $sel:expr, $op:tt, $variant:ident) => {{
        match $sel {
            None => Column::$variant($a.iter().zip($b.iter()).map(|(x, y)| x $op y).collect()),
            Some(s) => Column::$variant(
                s.iter()
                    .map(|&i| $a[i as usize] $op $b[i as usize])
                    .collect(),
            ),
        }
    }};
}

/// The generic two-column operator kernel (`==`, `>`, `&&`, `+`, ...).
pub struct BinaryKernel {
    pub op: BinOpKind,
}

impl ColumnKernel for BinaryKernel {
    fn apply(
        &self,
        inputs: &[&Column],
        sel: Option<&[u32]>,
        ctx: &mut ExecCtx,
    ) -> PcResult<Column> {
        let (a, b) = (inputs[0], inputs[1]);
        ctx.rows += sel_len(a.len(), sel) as u64;
        use BinOpKind::*;
        use Column::*;
        Ok(match (self.op, a, b) {
            (Eq, I64(x), I64(y)) => cmp_arms!(x, y, sel, ==),
            (Eq, F64(x), F64(y)) => cmp_arms!(x, y, sel, ==),
            (Eq, U64(x), U64(y)) => cmp_arms!(x, y, sel, ==),
            (Eq, Str(x), Str(y)) => cmp_arms!(x, y, sel, ==),
            (Eq, Bool(x), Bool(y)) => cmp_arms!(x, y, sel, ==),
            (Ne, I64(x), I64(y)) => cmp_arms!(x, y, sel, !=),
            (Ne, F64(x), F64(y)) => cmp_arms!(x, y, sel, !=),
            (Ne, Str(x), Str(y)) => cmp_arms!(x, y, sel, !=),
            (Gt, I64(x), I64(y)) => cmp_arms!(x, y, sel, >),
            (Gt, F64(x), F64(y)) => cmp_arms!(x, y, sel, >),
            (Lt, I64(x), I64(y)) => cmp_arms!(x, y, sel, <),
            (Lt, F64(x), F64(y)) => cmp_arms!(x, y, sel, <),
            (Ge, I64(x), I64(y)) => cmp_arms!(x, y, sel, >=),
            (Ge, F64(x), F64(y)) => cmp_arms!(x, y, sel, >=),
            (Le, I64(x), I64(y)) => cmp_arms!(x, y, sel, <=),
            (Le, F64(x), F64(y)) => cmp_arms!(x, y, sel, <=),
            (And, Bool(x), Bool(y)) => cmp_arms!(x, y, sel, &),
            (Or, Bool(x), Bool(y)) => cmp_arms!(x, y, sel, |),
            (Add, I64(x), I64(y)) => arith_arms!(x, y, sel, +, I64),
            (Add, F64(x), F64(y)) => arith_arms!(x, y, sel, +, F64),
            (Sub, I64(x), I64(y)) => arith_arms!(x, y, sel, -, I64),
            (Sub, F64(x), F64(y)) => arith_arms!(x, y, sel, -, F64),
            (Mul, I64(x), I64(y)) => arith_arms!(x, y, sel, *, I64),
            (Mul, F64(x), F64(y)) => arith_arms!(x, y, sel, *, F64),
            (op, a, b) => {
                return Err(pc_object::PcError::Catalog(format!(
                    "no kernel for {op:?} over ({}, {})",
                    a.type_name(),
                    b.type_name()
                )))
            }
        })
    }
}

/// Boolean negation.
pub struct NotKernel;

impl ColumnKernel for NotKernel {
    fn apply(
        &self,
        inputs: &[&Column],
        sel: Option<&[u32]>,
        ctx: &mut ExecCtx,
    ) -> PcResult<Column> {
        let b = inputs[0].as_bool()?;
        ctx.rows += sel_len(b.len(), sel) as u64;
        Ok(Column::Bool(match sel {
            None => b.iter().map(|x| !x).collect(),
            Some(s) => s.iter().map(|&i| !b[i as usize]).collect(),
        }))
    }
}

/// Constant operand for comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstOperand {
    I64(i64),
    F64(f64),
    Str(String),
}

impl std::fmt::Display for ConstOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstOperand::I64(v) => write!(f, "{v}"),
            ConstOperand::F64(v) => write!(f, "{v}"),
            ConstOperand::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Column-vs-constant comparison kernel (`const_comparison` in TCAP meta).
pub struct ConstCmpKernel {
    pub op: BinOpKind,
    pub value: ConstOperand,
}

impl ColumnKernel for ConstCmpKernel {
    fn apply(
        &self,
        inputs: &[&Column],
        sel: Option<&[u32]>,
        ctx: &mut ExecCtx,
    ) -> PcResult<Column> {
        let a = inputs[0];
        ctx.rows += sel_len(a.len(), sel) as u64;
        use BinOpKind::*;
        fn over<T: Copy>(v: &[T], sel: Option<&[u32]>, f: impl Fn(T) -> bool) -> Vec<bool> {
            match sel {
                None => v.iter().map(|&x| f(x)).collect(),
                Some(s) => s.iter().map(|&i| f(v[i as usize])).collect(),
            }
        }
        let out = match (&self.value, a) {
            (ConstOperand::I64(c), Column::I64(v)) => {
                let (c, op) = (*c, self.op);
                over(v, sel, |x| match op {
                    Eq => x == c,
                    Ne => x != c,
                    Gt => x > c,
                    Lt => x < c,
                    Ge => x >= c,
                    Le => x <= c,
                    _ => false,
                })
            }
            (ConstOperand::F64(c), Column::F64(v)) => {
                let (c, op) = (*c, self.op);
                over(v, sel, |x| match op {
                    Eq => x == c,
                    Ne => x != c,
                    Gt => x > c,
                    Lt => x < c,
                    Ge => x >= c,
                    Le => x <= c,
                    _ => false,
                })
            }
            (ConstOperand::Str(c), Column::Str(v)) => {
                let op = self.op;
                let test = |x: &str| match op {
                    Eq => x == c.as_str(),
                    Ne => x != c.as_str(),
                    _ => false,
                };
                match sel {
                    None => v.iter().map(|x| test(x)).collect(),
                    Some(s) => s.iter().map(|&i| test(&v[i as usize])).collect(),
                }
            }
            (c, col) => {
                return Err(pc_object::PcError::Catalog(format!(
                    "no const-comparison kernel for {c:?} vs {}",
                    col.type_name()
                )))
            }
        };
        Ok(Column::Bool(out))
    }
}

/// The HASH stage: hashes a key column to `u64` (join key preparation).
pub struct HashKernel;

impl ColumnKernel for HashKernel {
    fn apply(
        &self,
        inputs: &[&Column],
        sel: Option<&[u32]>,
        ctx: &mut ExecCtx,
    ) -> PcResult<Column> {
        let a = inputs[0];
        ctx.rows += sel_len(a.len(), sel) as u64;
        fn over<T, F: Fn(&T) -> u64>(v: &[T], sel: Option<&[u32]>, f: F) -> Vec<u64> {
            match sel {
                None => v.iter().map(f).collect(),
                Some(s) => s.iter().map(|&i| f(&v[i as usize])).collect(),
            }
        }
        Ok(Column::U64(match a {
            Column::I64(v) => over(v, sel, |x| pc_hash::hash_i64(*x)),
            Column::U64(v) => over(v, sel, |x| pc_hash::mix64(*x)),
            Column::F64(v) => over(v, sel, |x| pc_hash::hash_f64(*x)),
            Column::Str(v) => over(v, sel, |x| pc_hash::fnv1a(x.as_bytes())),
            Column::Bool(v) => over(v, sel, |x| pc_hash::mix64(*x as u64)),
            Column::Obj(_) => {
                return Err(pc_object::PcError::Catalog(
                    "cannot hash an object column; extract a key first".into(),
                ))
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::{AllocPolicy, BlockRef};

    fn ctx() -> ExecCtx {
        ExecCtx::new(BlockRef::new(4096, AllocPolicy::LightweightReuse))
    }

    #[test]
    fn binary_kernels_cover_mixed_scalars() {
        let mut c = ctx();
        let a = Column::F64(vec![1.0, 5.0, 3.0]);
        let b = Column::F64(vec![2.0, 2.0, 3.0]);
        let gt = BinaryKernel { op: BinOpKind::Gt }
            .apply(&[&a, &b], None, &mut c)
            .unwrap();
        assert_eq!(gt.as_bool().unwrap(), &[false, true, false]);
        let eq = BinaryKernel { op: BinOpKind::Eq }
            .apply(&[&a, &b], None, &mut c)
            .unwrap();
        assert_eq!(eq.as_bool().unwrap(), &[false, false, true]);
        let add = BinaryKernel { op: BinOpKind::Add }
            .apply(&[&a, &b], None, &mut c)
            .unwrap();
        assert_eq!(add.as_f64().unwrap(), &[3.0, 7.0, 6.0]);
    }

    #[test]
    fn type_mismatch_is_an_error_not_a_panic() {
        let mut c = ctx();
        let a = Column::F64(vec![1.0]);
        let b = Column::I64(vec![1]);
        assert!(BinaryKernel { op: BinOpKind::Eq }
            .apply(&[&a, &b], None, &mut c)
            .is_err());
    }

    #[test]
    fn const_cmp_and_not() {
        let mut c = ctx();
        let a = Column::I64(vec![49_999, 50_000, 50_001]);
        let gt = ConstCmpKernel {
            op: BinOpKind::Gt,
            value: ConstOperand::I64(50_000),
        }
        .apply(&[&a], None, &mut c)
        .unwrap();
        assert_eq!(gt.as_bool().unwrap(), &[false, false, true]);
        let ne = NotKernel.apply(&[&gt], None, &mut c).unwrap();
        assert_eq!(ne.as_bool().unwrap(), &[true, true, false]);
    }

    #[test]
    fn hash_kernel_is_stable_per_value() {
        let mut c = ctx();
        let a = Column::Str(vec!["eng".into(), "ops".into(), "eng".into()]);
        let h = HashKernel.apply(&[&a], None, &mut c).unwrap();
        let h = h.as_u64().unwrap();
        assert_eq!(h[0], h[2]);
        assert_ne!(h[0], h[1]);
    }

    #[test]
    fn selection_vector_reads_base_rows_and_emits_dense_output() {
        let mut c = ctx();
        let a = Column::I64(vec![10, 20, 30, 40, 50]);
        let b = Column::I64(vec![1, 2, 3, 4, 5]);
        let sel: Vec<u32> = vec![0, 2, 4];
        // Dense output, one row per selected base row.
        let add = BinaryKernel { op: BinOpKind::Add }
            .apply(&[&a, &b], Some(&sel), &mut c)
            .unwrap();
        assert_eq!(add.as_i64().unwrap(), &[11, 33, 55]);
        let gt = ConstCmpKernel {
            op: BinOpKind::Gt,
            value: ConstOperand::I64(25),
        }
        .apply(&[&a], Some(&sel), &mut c)
        .unwrap();
        assert_eq!(gt.as_bool().unwrap(), &[false, true, true]);
        // Hash over a selection matches hash over the gathered column.
        let dense = a.gather(&sel);
        let h_sel = HashKernel.apply(&[&a], Some(&sel), &mut c).unwrap();
        let h_dense = HashKernel.apply(&[&dense], None, &mut c).unwrap();
        assert_eq!(h_sel.as_u64().unwrap(), h_dense.as_u64().unwrap());
    }
}
