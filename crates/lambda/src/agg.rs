//! The aggregation engine behind `AggregateComp` (§3, Appendix D.2).
//!
//! Aggregation in PC is built directly on the object model: worker threads
//! pre-aggregate into hash-partitioned [`PcMap`] objects allocated on
//! output pages; the pages are sealed and shuffled wholesale (zero
//! serialization); the consuming side merges maps and materializes output
//! objects. This module provides:
//!
//! * [`AggregateSpec`] — the typed, user-implemented description of one
//!   aggregation (key extraction, in-place combine, partial-aggregate merge,
//!   output materialization);
//! * [`AggKey`] — key types usable for hash partitioning and map probing
//!   without allocating temporaries;
//! * [`ErasedAgg`] / [`ErasedAggSink`] / [`ErasedAggMerger`] — the
//!   object-safe interfaces the execution engine drives.

use crate::column::Column;
use crate::sink::SetWriter;
use pc_object::{
    hash as pc_hash, AllocPolicy, BlockRef, Handle, PcKey, PcMap, PcObjType, PcResult, PcString,
    PcValue, SealedPage,
};
use std::marker::PhantomData;
use std::sync::Arc;

/// A key type usable for aggregation: hashable and comparable against its
/// stored form without allocating, storable onto a map's page on first
/// insertion.
pub trait AggKey: Clone + 'static {
    /// The page-resident form ([`PcKey`]) used inside the partition maps.
    type Stored: PcKey;

    fn hash(&self) -> u64;
    /// Does this key equal the stored key at `slot`?
    fn matches(&self, b: &BlockRef, slot: u32) -> bool;
    /// Materializes the stored form on block `b` (first insertion).
    fn store_on(&self, b: &BlockRef) -> PcResult<Self::Stored>;
    /// Reads the key back from a stored slot (finalize iteration).
    fn load_from(b: &BlockRef, slot: u32) -> Self;
}

macro_rules! agg_key_int {
    ($($t:ty),*) => {$(
        impl AggKey for $t {
            type Stored = $t;
            fn hash(&self) -> u64 { pc_hash::mix64(*self as i64 as u64) }
            fn matches(&self, b: &BlockRef, slot: u32) -> bool { b.read::<$t>(slot) == *self }
            fn store_on(&self, _b: &BlockRef) -> PcResult<$t> { Ok(*self) }
            fn load_from(b: &BlockRef, slot: u32) -> Self { b.read(slot) }
        }
    )*};
}

agg_key_int!(i64, u64, i32, u32);

impl AggKey for (i32, i32) {
    type Stored = (i32, i32);
    fn hash(&self) -> u64 {
        pc_hash::combine(
            pc_hash::hash_i64(self.0 as i64),
            pc_hash::hash_i64(self.1 as i64),
        )
    }
    fn matches(&self, b: &BlockRef, slot: u32) -> bool {
        b.read::<(i32, i32)>(slot) == *self
    }
    fn store_on(&self, _b: &BlockRef) -> PcResult<Self> {
        Ok(*self)
    }
    fn load_from(b: &BlockRef, slot: u32) -> Self {
        b.read(slot)
    }
}

impl AggKey for String {
    type Stored = Handle<PcString>;
    fn hash(&self) -> u64 {
        pc_hash::fnv1a(self.as_bytes())
    }
    fn matches(&self, b: &BlockRef, slot: u32) -> bool {
        let (off, _code) = b.read::<(u32, u32)>(slot);
        if off == 0 {
            return false;
        }
        let len = b.read_u32(off) as usize;
        b.bytes(off + 4, len) == self.as_bytes()
    }
    fn store_on(&self, b: &BlockRef) -> PcResult<Handle<PcString>> {
        PcString::make_on(b, self)
    }
    fn load_from(b: &BlockRef, slot: u32) -> Self {
        let h: Handle<PcString> = Handle::<PcString>::load(b, slot);
        h.as_str().to_string()
    }
}

/// A typed aggregation: how records map to keys, how values fold in place
/// on page memory, how partial aggregates merge, and how results
/// materialize into output objects.
///
/// The k-means aggregation of Appendix A is the canonical example: `In` is
/// `DataPoint`, `Key` the closest-centroid id, `Val` a running
/// `(count, sum-vector)`, and `Out` a `Centroid` object.
pub trait AggregateSpec: Send + Sync + 'static {
    type In: PcObjType;
    type Key: AggKey;
    type Val: PcValue;
    type Out: PcObjType;

    /// Extracts the grouping key (the paper's `getKeyProjection`).
    fn key_of(&self, rec: &Handle<Self::In>) -> PcResult<Self::Key>;

    /// Builds the initial stored value for a fresh key, allocating on the
    /// partition map's block `b` (the paper's `getValueProjection`).
    fn init(&self, b: &BlockRef, rec: &Handle<Self::In>) -> PcResult<Self::Val>;

    /// Folds `rec` into the existing stored value at `slot` (operator `+`).
    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Self::In>) -> PcResult<()>;

    /// Merges a partial stored value (from a shuffled page) into `dst_slot`.
    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()>;

    /// Materializes the output object for a finished group. Runs with the
    /// output page active, so `make_object` allocates in place.
    fn finalize(&self, key: &Self::Key, b: &BlockRef, val_slot: u32)
        -> PcResult<Handle<Self::Out>>;
}

// --------------------------------------------------------------- erased API

/// Object-safe factory the engine stores inside an `AggregateComp`.
pub trait ErasedAgg: Send + Sync {
    /// Display name of the output type (diagnostics / catalog).
    fn out_type(&self) -> String;
    /// A pre-aggregation sink with `partitions` hash partitions.
    fn new_sink(&self, partitions: usize, page_size: usize) -> Box<dyn ErasedAggSink>;
    /// A merger for one partition's shuffled pages.
    fn new_merger(&self, page_size: usize) -> Box<dyn ErasedAggMerger>;
}

/// Pipeline-side pre-aggregation (the producing stage of Appendix D.2).
pub trait ErasedAggSink {
    /// Folds a column of input objects into the partition maps. When `sel`
    /// is `Some`, only the selected base rows are absorbed — the sink is a
    /// contiguity boundary, so it consumes the selection directly instead of
    /// forcing the pipeline to materialize a compacted column first.
    fn absorb(&mut self, objs: &Column, sel: Option<&[u32]>) -> PcResult<()>;
    /// Seals all partition maps, returning `(partition, page)` pairs.
    fn flush(&mut self) -> PcResult<Vec<(usize, SealedPage)>>;
}

/// Consuming-side merge + materialization (the aggregation threads).
pub trait ErasedAggMerger {
    /// Merges one shuffled partial-aggregate page.
    fn merge_page(&mut self, page: SealedPage) -> PcResult<()>;
    /// Emits one output object per group into `writer`; returns group count.
    fn finalize(&mut self, writer: &mut SetWriter) -> PcResult<u64>;
    /// Seals the merged map back into shippable pages (used by the
    /// combining threads of Appendix D.2, which merge locally and forward).
    fn into_pages(self: Box<Self>) -> PcResult<Vec<SealedPage>>;
}

/// Wraps a typed [`AggregateSpec`] into the erased engine interface.
pub struct AggEngine<S: AggregateSpec>(pub Arc<S>);

impl<S: AggregateSpec> AggEngine<S> {
    pub fn new(spec: S) -> Self {
        AggEngine(Arc::new(spec))
    }
}

type MapOf<S> = PcMap<<<S as AggregateSpec>::Key as AggKey>::Stored, <S as AggregateSpec>::Val>;

struct MapPage<S: AggregateSpec> {
    block: BlockRef,
    map: Handle<MapOf<S>>,
}

impl<S: AggregateSpec> MapPage<S> {
    fn new(page_size: usize) -> PcResult<Self> {
        let block = BlockRef::new(page_size, AllocPolicy::LightweightReuse);
        let map = block.make_object::<MapOf<S>>()?;
        block.set_root(&map);
        Ok(MapPage { block, map })
    }

    fn seal(self) -> PcResult<SealedPage> {
        drop(self.map);
        self.block.try_seal()
    }
}

impl<S: AggregateSpec> ErasedAgg for AggEngine<S> {
    fn out_type(&self) -> String {
        S::Out::type_name()
    }

    fn new_sink(&self, partitions: usize, page_size: usize) -> Box<dyn ErasedAggSink> {
        Box::new(SinkImpl::<S> {
            spec: self.0.clone(),
            partitions,
            page_size,
            current: (0..partitions).map(|_| None).collect(),
            done: Vec::new(),
        })
    }

    fn new_merger(&self, page_size: usize) -> Box<dyn ErasedAggMerger> {
        Box::new(MergerImpl::<S> {
            spec: self.0.clone(),
            page_size,
            acc: None,
            _pd: PhantomData,
        })
    }
}

struct SinkImpl<S: AggregateSpec> {
    spec: Arc<S>,
    partitions: usize,
    page_size: usize,
    current: Vec<Option<MapPage<S>>>,
    done: Vec<(usize, SealedPage)>,
}

impl<S: AggregateSpec> SinkImpl<S> {
    fn upsert(
        &mut self,
        part: usize,
        hash: u64,
        key: &S::Key,
        rec: &Handle<S::In>,
    ) -> PcResult<()> {
        if self.current[part].is_none() {
            self.current[part] = Some(MapPage::new(self.page_size)?);
        }
        let spec = &self.spec;
        let attempt = |mp: &MapPage<S>| {
            mp.map.upsert_by(
                hash,
                |b, slot| key.matches(b, slot),
                |b| key.store_on(b),
                |b| spec.init(b, rec),
                |b, slot| spec.combine(b, slot, rec),
            )
        };
        let mut page_size = self.page_size;
        let mut on_fresh_page = false;
        for _ in 0..24 {
            match attempt(self.current[part].as_ref().unwrap()) {
                Ok(()) => return Ok(()),
                Err(pc_object::PcError::BlockFull { .. }) => {
                    // Page full: seal it for shuffling and restart on a fresh
                    // one (the out-of-memory fault of §6.1). A fault on a
                    // just-created page means the value is larger than a
                    // page: escalate before retrying.
                    let full = self.current[part].take().unwrap();
                    if on_fresh_page {
                        page_size = (page_size * 2).min(256 << 20);
                    }
                    if !full.map.is_empty() {
                        self.done.push((part, full.seal()?));
                    }
                    self.current[part] = Some(MapPage::new(page_size)?);
                    on_fresh_page = true;
                }
                Err(e) => return Err(e),
            }
        }
        Err(pc_object::PcError::Catalog(
            "aggregate value exceeds the maximum page size".into(),
        ))
    }
}

impl<S: AggregateSpec> ErasedAggSink for SinkImpl<S> {
    fn absorb(&mut self, objs: &Column, sel: Option<&[u32]>) -> PcResult<()> {
        let objs = objs.as_obj()?;
        crate::kernel::for_each_sel(objs.len(), sel, |i| {
            let rec = objs[i].downcast_unchecked::<S::In>();
            let key = self.spec.key_of(&rec)?;
            let hash = key.hash();
            let part = (hash % self.partitions as u64) as usize;
            self.upsert(part, hash, &key, &rec)
        })
    }

    fn flush(&mut self) -> PcResult<Vec<(usize, SealedPage)>> {
        for part in 0..self.partitions {
            if let Some(mp) = self.current[part].take() {
                if !mp.map.is_empty() {
                    self.done.push((part, mp.seal()?));
                }
            }
        }
        Ok(std::mem::take(&mut self.done))
    }
}

struct MergerImpl<S: AggregateSpec> {
    spec: Arc<S>,
    page_size: usize,
    acc: Option<MapPage<S>>,
    _pd: PhantomData<fn() -> S>,
}

impl<S: AggregateSpec> MergerImpl<S> {
    /// Grows the accumulator onto a block twice the size, deep-copying the
    /// map (keys keep hashing identically, so the rehash is exact).
    fn grow(&mut self) -> PcResult<()> {
        let old = self.acc.take().expect("grow without accumulator");
        let new_size = (old.block.capacity() * 2).max(self.page_size);
        let block = BlockRef::new(new_size, AllocPolicy::LightweightReuse);
        let map = old.map.deep_copy_to(&block)?;
        block.set_root(&map);
        self.acc = Some(MapPage { block, map });
        Ok(())
    }
}

impl<S: AggregateSpec> ErasedAggMerger for MergerImpl<S> {
    fn merge_page(&mut self, page: SealedPage) -> PcResult<()> {
        if self.acc.is_none() {
            self.acc = Some(MapPage::new(self.page_size)?);
        }
        let (src_block, root) = page.open()?;
        let src_map = root.downcast::<MapOf<S>>()?;
        let _ = src_block;
        // Collect slots first: the source page is immutable while we fold.
        let mut entries: Vec<(u32, u32)> = Vec::with_capacity(src_map.len());
        src_map.for_each_slot(|_b, k, v| {
            entries.push((k, v));
            Ok(())
        })?;
        for (kslot, vslot) in entries {
            let key = S::Key::load_from(src_map.block(), kslot);
            let hash = key.hash();
            loop {
                let spec = &self.spec;
                let src = src_map.block();
                let acc = self.acc.as_ref().unwrap();
                let r = acc.map.upsert_by(
                    hash,
                    |b, slot| key.matches(b, slot),
                    |b| key.store_on(b),
                    // First sighting of the key: adopt the partial value by
                    // deep copy (load+store crosses blocks via §6.4's rule).
                    |_b| Ok(S::Val::load(src, vslot)),
                    |b, slot| spec.merge(b, slot, src, vslot),
                );
                match r {
                    Ok(()) => break,
                    Err(pc_object::PcError::BlockFull { .. }) => self.grow()?,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    fn into_pages(self: Box<Self>) -> PcResult<Vec<SealedPage>> {
        match self.acc {
            Some(acc) => Ok(vec![acc.seal()?]),
            None => Ok(Vec::new()),
        }
    }

    fn finalize(&mut self, writer: &mut SetWriter) -> PcResult<u64> {
        let Some(acc) = self.acc.take() else {
            return Ok(0);
        };
        let mut groups = 0u64;
        let mut entries: Vec<(u32, u32)> = Vec::with_capacity(acc.map.len());
        acc.map.for_each_slot(|_b, k, v| {
            entries.push((k, v));
            Ok(())
        })?;
        for (kslot, vslot) in entries {
            let key = S::Key::load_from(acc.block(), kslot);
            writer.write_with(|| {
                let out = self.spec.finalize(&key, acc.block(), vslot)?;
                Ok(out.erase())
            })?;
            groups += 1;
        }
        Ok(groups)
    }
}

impl<S: AggregateSpec> MapPage<S> {
    fn block(&self) -> &BlockRef {
        &self.block
    }
}
