//! The aggregation engine behind `AggregateComp` (§3, Appendix D.2).
//!
//! Aggregation in PC is built directly on the object model: worker threads
//! pre-aggregate into hash-partitioned [`PcMap`] objects allocated on
//! output pages; the pages are sealed and shuffled wholesale (zero
//! serialization); the consuming side merges maps and materializes output
//! objects. This module provides:
//!
//! * [`AggregateSpec`] — the typed, user-implemented description of one
//!   aggregation (key extraction, in-place combine, partial-aggregate merge,
//!   output materialization);
//! * [`AggKey`] — key types usable for hash partitioning and map probing
//!   without allocating temporaries;
//! * [`ErasedAgg`] / [`ErasedAggSink`] / [`ErasedAggMerger`] — the
//!   object-safe interfaces the execution engine drives.
//!
//! The sink's hot path is **vectorized**: `absorb` extracts keys and hashes
//! for the whole selection-filtered batch into reusable scratch buffers,
//! radix-partitions row indices by the hash's high bits (a mask, not a
//! per-row `%`), and folds each partition's bucket into its map page with
//! one grouped bulk upsert, so consecutive probes hit the same hot table.
//! The merger folds shuffled pages map-at-a-time, reusing stored entry
//! hashes instead of rehashing keys. The old row-at-a-time path survives as
//! [`ErasedAggSink::absorb_rowwise`] for differential tests and the
//! `micro_agg` A/B benchmark.

use crate::column::Column;
use crate::sink::SetWriter;
use pc_object::{
    hash as pc_hash, AllocPolicy, BlockRef, Handle, MemoryBudget, MemoryGrant, PageSpiller, PcKey,
    PcMap, PcObjType, PcResult, PcString, PcValue, SealedPage,
};
use std::marker::PhantomData;
use std::sync::Arc;

/// Out-of-core context for a pre-aggregation sink: the [`MemoryBudget`] its
/// sealed map pages reserve against, and the [`PageSpiller`] a chain falls
/// back to when a reservation is denied. `None` in the engine means the old
/// fully-in-memory behavior, byte for byte.
#[derive(Clone)]
pub struct SpillCtx {
    pub budget: MemoryBudget,
    pub spiller: Arc<dyn PageSpiller>,
}

impl std::fmt::Debug for SpillCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillCtx")
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

/// A sealed partial-aggregate page that is either resident or spilled.
/// Spilled pages reload lazily at merge time, one page in memory at a time —
/// the aggregation side of grace-style two-pass execution.
pub enum AggPage {
    Ready(SealedPage),
    Spilled {
        spiller: Arc<dyn PageSpiller>,
        token: u64,
        bytes: usize,
    },
}

impl AggPage {
    /// The page's byte footprint (resident or on disk).
    pub fn bytes(&self) -> usize {
        match self {
            AggPage::Ready(p) => p.used(),
            AggPage::Spilled { bytes, .. } => *bytes,
        }
    }

    /// Whether the page currently lives on disk.
    pub fn is_spilled(&self) -> bool {
        matches!(self, AggPage::Spilled { .. })
    }

    /// Materializes the page, reloading (and discarding the spill file) if
    /// it was spilled.
    pub fn load(self) -> PcResult<SealedPage> {
        match self {
            AggPage::Ready(p) => Ok(p),
            AggPage::Spilled {
                spiller,
                token,
                bytes: _,
            } => {
                let page = spiller.reload(token)?;
                spiller.discard(token);
                Ok(page)
            }
        }
    }
}

/// A key type usable for aggregation: hashable and comparable against its
/// stored form without allocating, storable onto a map's page on first
/// insertion.
pub trait AggKey: Clone + 'static {
    /// The page-resident form ([`PcKey`]) used inside the partition maps.
    type Stored: PcKey;

    fn hash(&self) -> u64;
    /// Does this key equal the stored key at `slot`?
    fn matches(&self, b: &BlockRef, slot: u32) -> bool;
    /// Materializes the stored form on block `b` (first insertion).
    fn store_on(&self, b: &BlockRef) -> PcResult<Self::Stored>;
    /// Reads the key back from a stored slot (finalize iteration).
    fn load_from(b: &BlockRef, slot: u32) -> Self;
}

macro_rules! agg_key_int {
    ($($t:ty),*) => {$(
        impl AggKey for $t {
            type Stored = $t;
            fn hash(&self) -> u64 { pc_hash::mix64(*self as i64 as u64) }
            fn matches(&self, b: &BlockRef, slot: u32) -> bool { b.read::<$t>(slot) == *self }
            fn store_on(&self, _b: &BlockRef) -> PcResult<$t> { Ok(*self) }
            fn load_from(b: &BlockRef, slot: u32) -> Self { b.read(slot) }
        }
    )*};
}

agg_key_int!(i64, u64, i32, u32);

impl AggKey for (i32, i32) {
    type Stored = (i32, i32);
    fn hash(&self) -> u64 {
        pc_hash::combine(
            pc_hash::hash_i64(self.0 as i64),
            pc_hash::hash_i64(self.1 as i64),
        )
    }
    fn matches(&self, b: &BlockRef, slot: u32) -> bool {
        b.read::<(i32, i32)>(slot) == *self
    }
    fn store_on(&self, _b: &BlockRef) -> PcResult<Self> {
        Ok(*self)
    }
    fn load_from(b: &BlockRef, slot: u32) -> Self {
        b.read(slot)
    }
}

impl AggKey for String {
    type Stored = Handle<PcString>;
    fn hash(&self) -> u64 {
        pc_hash::fnv1a(self.as_bytes())
    }
    fn matches(&self, b: &BlockRef, slot: u32) -> bool {
        let (off, _code) = b.read::<(u32, u32)>(slot);
        if off == 0 {
            return false;
        }
        let len = b.read_u32(off) as usize;
        b.bytes(off + 4, len) == self.as_bytes()
    }
    fn store_on(&self, b: &BlockRef) -> PcResult<Handle<PcString>> {
        PcString::make_on(b, self)
    }
    fn load_from(b: &BlockRef, slot: u32) -> Self {
        let h: Handle<PcString> = Handle::<PcString>::load(b, slot);
        h.as_str().to_string()
    }
}

/// A typed aggregation: how records map to keys, how values fold in place
/// on page memory, how partial aggregates merge, and how results
/// materialize into output objects.
///
/// The k-means aggregation of Appendix A is the canonical example: `In` is
/// `DataPoint`, `Key` the closest-centroid id, `Val` a running
/// `(count, sum-vector)`, and `Out` a `Centroid` object.
pub trait AggregateSpec: Send + Sync + 'static {
    type In: PcObjType;
    type Key: AggKey;
    type Val: PcValue;
    type Out: PcObjType;

    /// Extracts the grouping key (the paper's `getKeyProjection`).
    fn key_of(&self, rec: &Handle<Self::In>) -> PcResult<Self::Key>;

    /// Builds the initial stored value for a fresh key, allocating on the
    /// partition map's block `b` (the paper's `getValueProjection`).
    fn init(&self, b: &BlockRef, rec: &Handle<Self::In>) -> PcResult<Self::Val>;

    /// Folds `rec` into the existing stored value at `slot` (operator `+`).
    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Self::In>) -> PcResult<()>;

    /// Merges a partial stored value (from a shuffled page) into `dst_slot`.
    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()>;

    /// Materializes the output object for a finished group. Runs with the
    /// output page active, so `make_object` allocates in place.
    fn finalize(&self, key: &Self::Key, b: &BlockRef, val_slot: u32)
        -> PcResult<Handle<Self::Out>>;
}

// --------------------------------------------------------------- erased API

/// Object-safe factory the engine stores inside an `AggregateComp`.
pub trait ErasedAgg: Send + Sync {
    /// Display name of the output type (diagnostics / catalog).
    fn out_type(&self) -> String;
    /// A pre-aggregation sink with `partitions` hash partitions. With a
    /// [`SpillCtx`], sealed map pages reserve budget and spill under
    /// pressure; with `None` the sink is purely in-memory.
    fn new_sink(
        &self,
        partitions: usize,
        page_size: usize,
        spill: Option<SpillCtx>,
    ) -> Box<dyn ErasedAggSink>;
    /// A merger for one partition's shuffled pages.
    fn new_merger(&self, page_size: usize) -> Box<dyn ErasedAggMerger>;
}

/// Counters a pre-aggregation sink accumulates while absorbing; folded into
/// the engine's `ExecStats` so the two-phase behavior of Appendix D.2 is
/// observable from `repro` output.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggSinkStats {
    /// Rows folded into partition maps.
    pub rows_absorbed: u64,
    /// Map pages sealed for shuffling (mid-burst page faults plus `flush`).
    pub map_pages_sealed: u64,
    /// Sealed map pages pushed to the spill store under memory pressure.
    pub pages_spilled: u64,
    /// Bytes those spilled pages carried.
    pub bytes_spilled: u64,
}

/// Pipeline-side pre-aggregation (the producing stage of Appendix D.2).
pub trait ErasedAggSink {
    /// Folds a column of input objects into the partition maps, batch at a
    /// time: keys and hashes for the whole (selection-filtered) batch are
    /// extracted into reusable scratch, row indices are radix-partitioned
    /// with a power-of-two mask, and each partition's map absorbs its rows
    /// as one grouped bulk upsert. When `sel` is `Some`, only the selected
    /// base rows are absorbed — the sink is a contiguity boundary, so it
    /// consumes the selection directly instead of forcing the pipeline to
    /// materialize a compacted column first.
    fn absorb(&mut self, objs: &Column, sel: Option<&[u32]>) -> PcResult<()>;
    /// The pre-vectorization reference path: one `key_of → hash → % →
    /// upsert` round trip per row. Kept so differential tests and the
    /// `micro_agg` benchmark can compare the two paths on identical input;
    /// the engine never calls this.
    fn absorb_rowwise(&mut self, objs: &Column, sel: Option<&[u32]>) -> PcResult<()>;
    /// Seals all partition maps, returning `(partition, page)` pairs. Pages
    /// may be [`AggPage::Spilled`]; callers `load()` them at merge time so
    /// at most one reloaded page is in memory at once.
    fn flush(&mut self) -> PcResult<Vec<(usize, AggPage)>>;
    /// Counters accumulated so far (valid before and after `flush`).
    fn stats(&self) -> AggSinkStats;
}

/// Consuming-side merge + materialization (the aggregation threads).
pub trait ErasedAggMerger {
    /// Merges one shuffled partial-aggregate page.
    fn merge_page(&mut self, page: SealedPage) -> PcResult<()>;
    /// Emits one output object per group into `writer`; returns group count.
    fn finalize(&mut self, writer: &mut SetWriter) -> PcResult<u64>;
    /// Seals the merged map back into shippable pages (used by the
    /// combining threads of Appendix D.2, which merge locally and forward).
    fn into_pages(self: Box<Self>) -> PcResult<Vec<SealedPage>>;
}

/// Wraps a typed [`AggregateSpec`] into the erased engine interface.
pub struct AggEngine<S: AggregateSpec>(pub Arc<S>);

impl<S: AggregateSpec> AggEngine<S> {
    pub fn new(spec: S) -> Self {
        AggEngine(Arc::new(spec))
    }
}

type MapOf<S> = PcMap<<<S as AggregateSpec>::Key as AggKey>::Stored, <S as AggregateSpec>::Val>;

struct MapPage<S: AggregateSpec> {
    block: BlockRef,
    map: Handle<MapOf<S>>,
}

impl<S: AggregateSpec> MapPage<S> {
    fn new(page_size: usize) -> PcResult<Self> {
        let block = BlockRef::new(page_size, AllocPolicy::LightweightReuse);
        let map = block.make_object::<MapOf<S>>()?;
        block.set_root(&map);
        Ok(MapPage { block, map })
    }

    fn seal(self) -> PcResult<SealedPage> {
        drop(self.map);
        self.block.try_seal()
    }
}

impl<S: AggregateSpec> ErasedAgg for AggEngine<S> {
    fn out_type(&self) -> String {
        S::Out::type_name()
    }

    fn new_sink(
        &self,
        partitions: usize,
        page_size: usize,
        spill: Option<SpillCtx>,
    ) -> Box<dyn ErasedAggSink> {
        // Power-of-two partition count, so partition selection is a shift
        // and mask on the hash's *high* bits — disjoint from the low bits
        // the partition maps use for masked probing (using the same bits
        // for both would leave every map only `cap / partitions` home
        // slots and degrade probing into long linear runs).
        let partitions = partitions.max(1).next_power_of_two();
        Box::new(SinkImpl::<S> {
            spec: self.0.clone(),
            partitions,
            page_size,
            current: (0..partitions).map(|_| None).collect(),
            done: Vec::new(),
            spill,
            grant: None,
            stats: AggSinkStats::default(),
            keys: Vec::new(),
            rows: Vec::new(),
            hashes: Vec::new(),
            starts: Vec::new(),
            cursors: Vec::new(),
            order: Vec::new(),
            bucket_hashes: Vec::new(),
        })
    }

    fn new_merger(&self, page_size: usize) -> Box<dyn ErasedAggMerger> {
        Box::new(MergerImpl::<S> {
            spec: self.0.clone(),
            page_size,
            acc: None,
            _pd: PhantomData,
        })
    }
}

struct SinkImpl<S: AggregateSpec> {
    spec: Arc<S>,
    /// Hash partition count, always a power of two.
    partitions: usize,
    page_size: usize,
    current: Vec<Option<MapPage<S>>>,
    done: Vec<(usize, AggPage)>,
    /// Out-of-core context; `None` = in-memory sink.
    spill: Option<SpillCtx>,
    /// The reservation covering every `Ready` page in `done`.
    grant: Option<MemoryGrant>,
    stats: AggSinkStats,
    // Per-batch scratch, cleared (not freed) at every batch boundary.
    /// Extracted keys, one per selected row.
    keys: Vec<S::Key>,
    /// Base-row index of each selected row, so phase 3 can re-borrow the
    /// record from the column (a zero-refcount `typed_ref`, no per-row
    /// handle materialization anywhere in the batch path).
    rows: Vec<u32>,
    /// Key hashes, one per selected row.
    hashes: Vec<u64>,
    /// Radix bucket boundaries: partition `p` owns `starts[p]..starts[p+1]`.
    starts: Vec<u32>,
    /// Scatter cursors, one per partition.
    cursors: Vec<u32>,
    /// Row indices (into `keys`/`recs`/`hashes`) in bucket order.
    order: Vec<u32>,
    /// Hashes in bucket order, the contiguous input to the bulk upsert.
    bucket_hashes: Vec<u64>,
}

impl<S: AggregateSpec> SinkImpl<S> {
    /// Partition of a hash: high bits, masked. The probe path consumes the
    /// low bits, so the two stay independent (see `new_sink`).
    #[inline]
    fn part_of(&self, h: u64) -> usize {
        ((h >> 32) as usize) & (self.partitions - 1)
    }

    /// Retires a sealed map page into `done`, reserving its bytes against
    /// the budget. A denied reservation spills partition `part`'s *whole*
    /// chain — every already-resident page of the partition plus the new
    /// one — returning the freed bytes to the budget (grace-style: once a
    /// partition starts spilling, keeping its older pages resident buys
    /// nothing, because the merge pass needs the full chain anyway).
    fn push_done(&mut self, part: usize, page: SealedPage) -> PcResult<()> {
        self.stats.map_pages_sealed += 1;
        let Some(ctx) = self.spill.clone() else {
            self.done.push((part, AggPage::Ready(page)));
            return Ok(());
        };
        let bytes = page.used();
        let granted = match &mut self.grant {
            Some(g) => g.grow(bytes).is_ok(),
            None => match ctx.budget.reserve(bytes) {
                Ok(g) => {
                    self.grant = Some(g);
                    true
                }
                Err(_) => false,
            },
        };
        if granted {
            self.done.push((part, AggPage::Ready(page)));
            return Ok(());
        }
        let mut freed = 0usize;
        for (p, ap) in self.done.iter_mut() {
            if *p != part || ap.is_spilled() {
                continue;
            }
            if let AggPage::Ready(resident) = ap {
                let b = resident.used();
                let token = ctx.spiller.spill(resident)?;
                self.stats.pages_spilled += 1;
                self.stats.bytes_spilled += b as u64;
                freed += b;
                *ap = AggPage::Spilled {
                    spiller: ctx.spiller.clone(),
                    token,
                    bytes: b,
                };
            }
        }
        if freed > 0 {
            if let Some(g) = &mut self.grant {
                g.shrink(freed);
            }
        }
        let token = ctx.spiller.spill(&page)?;
        self.stats.pages_spilled += 1;
        self.stats.bytes_spilled += bytes as u64;
        self.done.push((
            part,
            AggPage::Spilled {
                spiller: ctx.spiller.clone(),
                token,
                bytes,
            },
        ));
        Ok(())
    }

    /// Phases 2 and 3 of `absorb`, over the batch scratch extracted in
    /// phase 1 (passed in as slices because the scratch buffers are taken
    /// out of `self` for the duration of the batch). `objs` is the batch's
    /// object column; `rows[j]` is the base row of selected row `j`.
    fn absorb_extracted(
        &mut self,
        objs: &[pc_object::AnyHandle],
        keys: &[S::Key],
        rows: &[u32],
        hashes: &[u64],
    ) -> PcResult<()> {
        let n = hashes.len();
        if n == 0 {
            return Ok(());
        }
        self.stats.rows_absorbed += n as u64;
        let p = self.partitions;

        // Phase 2: radix-partition row indices with a counting scatter —
        // no per-row `%`, no allocation past the first batch.
        let mut starts = std::mem::take(&mut self.starts);
        let mut cursors = std::mem::take(&mut self.cursors);
        let mut order = std::mem::take(&mut self.order);
        let mut bucket_hashes = std::mem::take(&mut self.bucket_hashes);
        starts.clear();
        starts.resize(p + 1, 0);
        for &h in hashes {
            starts[self.part_of(h) + 1] += 1;
        }
        for i in 0..p {
            starts[i + 1] += starts[i];
        }
        cursors.clear();
        cursors.extend_from_slice(&starts[..p]);
        order.clear();
        order.resize(n, 0);
        bucket_hashes.clear();
        bucket_hashes.resize(n, 0);
        for (i, &h) in hashes.iter().enumerate() {
            let part = self.part_of(h);
            let at = cursors[part] as usize;
            cursors[part] += 1;
            order[at] = i as u32;
            bucket_hashes[at] = h;
        }

        // Phase 3: grouped bulk upsert, one partition at a time, so probes
        // for the same map page stay cache-resident.
        let mut result = Ok(());
        for part in 0..p {
            let (lo, hi) = (starts[part] as usize, starts[part + 1] as usize);
            if lo == hi {
                continue;
            }
            result = self.bulk_upsert(
                part,
                &order[lo..hi],
                &bucket_hashes[lo..hi],
                objs,
                keys,
                rows,
            );
            if result.is_err() {
                break;
            }
        }

        self.starts = starts;
        self.cursors = cursors;
        self.order = order;
        self.bucket_hashes = bucket_hashes;
        result
    }

    /// Drives one partition's map through a whole bucket of rows, resuming
    /// across page faults: on `BlockFull` the full page is sealed for
    /// shuffling and the bulk upsert continues on a fresh page exactly where
    /// it stopped.
    fn bulk_upsert(
        &mut self,
        part: usize,
        order: &[u32],
        hashes: &[u64],
        objs: &[pc_object::AnyHandle],
        keys: &[S::Key],
        rows: &[u32],
    ) -> PcResult<()> {
        if self.current[part].is_none() {
            self.current[part] = Some(MapPage::new(self.page_size)?);
        }
        let spec = self.spec.clone();
        let mut done = 0usize;
        let mut page_size = self.page_size;
        let mut stall = 0u32;
        loop {
            let mp = self.current[part].as_ref().unwrap();
            // Pre-size for the burst. The estimate follows the map's own
            // history (a low-cardinality map stays tiny; a high-cardinality
            // one doubles ahead of the rows), and quietly falls back to
            // on-demand growth when the page cannot hold the bigger table.
            let est = (mp.map.len() * 2 + 16).min(hashes.len() - done);
            match mp.map.reserve(est) {
                Err(pc_object::PcError::BlockFull { .. }) => {}
                r => r?,
            }
            let before = done;
            // Records are re-borrowed from the column by base row: a
            // zero-refcount typed view, valid for the life of the batch.
            // `rows` is empty for dense batches (position == base row).
            let rec = |j: usize| {
                let pos = order[j] as usize;
                let base = if rows.is_empty() {
                    pos
                } else {
                    rows[pos] as usize
                };
                objs[base].typed_ref::<S::In>()
            };
            let r = mp.map.upsert_batch_by(
                hashes,
                &mut done,
                |j, b, slot| keys[order[j] as usize].matches(b, slot),
                |j, b| keys[order[j] as usize].store_on(b),
                |j, b| spec.init(b, rec(j)),
                |j, b, slot| spec.combine(b, slot, rec(j)),
            );
            match r {
                Ok(()) => return Ok(()),
                Err(pc_object::PcError::BlockFull { .. }) => {
                    // Page full: seal it for shuffling and resume on a fresh
                    // one (the out-of-memory fault of §6.1). No progress on
                    // a just-created page means one value outgrows the page:
                    // escalate before retrying.
                    stall = if done == before { stall + 1 } else { 0 };
                    if stall > 24 {
                        return Err(pc_object::PcError::Catalog(
                            "aggregate value exceeds the maximum page size".into(),
                        ));
                    }
                    if stall > 1 {
                        page_size = (page_size * 2).min(256 << 20);
                    }
                    let full = self.current[part].take().unwrap();
                    if !full.map.is_empty() {
                        let sealed = full.seal()?;
                        self.push_done(part, sealed)?;
                    }
                    self.current[part] = Some(MapPage::new(page_size)?);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The pre-vectorization per-row upsert, kept verbatim as the reference
    /// path behind `absorb_rowwise` (modulo-probed, closure-driven, one
    /// retry scaffold per row).
    fn upsert_row(
        &mut self,
        part: usize,
        hash: u64,
        key: &S::Key,
        rec: &Handle<S::In>,
    ) -> PcResult<()> {
        if self.current[part].is_none() {
            self.current[part] = Some(MapPage::new(self.page_size)?);
        }
        let spec = self.spec.clone();
        let attempt = |mp: &MapPage<S>| {
            mp.map.upsert_by_modref(
                hash,
                |b, slot| key.matches(b, slot),
                |b| key.store_on(b),
                |b| spec.init(b, rec),
                |b, slot| spec.combine(b, slot, rec),
            )
        };
        let mut page_size = self.page_size;
        let mut on_fresh_page = false;
        for _ in 0..24 {
            match attempt(self.current[part].as_ref().unwrap()) {
                Ok(()) => return Ok(()),
                Err(pc_object::PcError::BlockFull { .. }) => {
                    let full = self.current[part].take().unwrap();
                    if on_fresh_page {
                        page_size = (page_size * 2).min(256 << 20);
                    }
                    if !full.map.is_empty() {
                        let sealed = full.seal()?;
                        self.push_done(part, sealed)?;
                    }
                    self.current[part] = Some(MapPage::new(page_size)?);
                    on_fresh_page = true;
                }
                Err(e) => return Err(e),
            }
        }
        Err(pc_object::PcError::Catalog(
            "aggregate value exceeds the maximum page size".into(),
        ))
    }
}

impl<S: AggregateSpec> ErasedAggSink for SinkImpl<S> {
    fn absorb(&mut self, objs: &Column, sel: Option<&[u32]>) -> PcResult<()> {
        let objs = objs.as_obj()?;
        // Phase 1: extract keys and hashes for the whole selected batch
        // into reusable scratch. Records are *borrowed* from the column
        // (`typed_ref`): the batch path touches no reference count.
        let mut keys = std::mem::take(&mut self.keys);
        let mut rows = std::mem::take(&mut self.rows);
        let mut hashes = std::mem::take(&mut self.hashes);
        keys.clear();
        rows.clear();
        hashes.clear();
        let spec = self.spec.clone();
        // `rows` (selected position → base row) is only materialized under a
        // selection; for a dense batch the positions coincide.
        let extracted = match sel {
            None => crate::kernel::for_each_sel(objs.len(), None, |i| {
                let key = spec.key_of(objs[i].typed_ref::<S::In>())?;
                hashes.push(key.hash());
                keys.push(key);
                Ok(())
            }),
            Some(s) => crate::kernel::for_each_sel(objs.len(), Some(s), |i| {
                let key = spec.key_of(objs[i].typed_ref::<S::In>())?;
                hashes.push(key.hash());
                keys.push(key);
                rows.push(i as u32);
                Ok(())
            }),
        };
        let result = extracted.and_then(|()| self.absorb_extracted(objs, &keys, &rows, &hashes));
        keys.clear();
        rows.clear();
        hashes.clear();
        self.keys = keys;
        self.rows = rows;
        self.hashes = hashes;
        result
    }

    fn absorb_rowwise(&mut self, objs: &Column, sel: Option<&[u32]>) -> PcResult<()> {
        let objs = objs.as_obj()?;
        self.stats.rows_absorbed += crate::kernel::sel_len(objs.len(), sel) as u64;
        crate::kernel::for_each_sel(objs.len(), sel, |i| {
            let rec = objs[i].downcast_unchecked::<S::In>();
            let key = self.spec.key_of(&rec)?;
            let hash = key.hash();
            let part = (hash % self.partitions as u64) as usize;
            self.upsert_row(part, hash, &key, &rec)
        })
    }

    fn flush(&mut self) -> PcResult<Vec<(usize, AggPage)>> {
        for part in 0..self.partitions {
            if let Some(mp) = self.current[part].take() {
                if !mp.map.is_empty() {
                    let sealed = mp.seal()?;
                    self.push_done(part, sealed)?;
                }
            }
        }
        // The flushed pages leave the sink; their memory is the caller's
        // now (merged page-at-a-time), so the reservation releases here.
        self.grant = None;
        Ok(std::mem::take(&mut self.done))
    }

    fn stats(&self) -> AggSinkStats {
        self.stats
    }
}

struct MergerImpl<S: AggregateSpec> {
    spec: Arc<S>,
    page_size: usize,
    acc: Option<MapPage<S>>,
    _pd: PhantomData<fn() -> S>,
}

impl<S: AggregateSpec> MergerImpl<S> {
    /// Grows the accumulator onto a block twice the size, deep-copying the
    /// map (keys keep hashing identically, so the rehash is exact).
    fn grow(&mut self) -> PcResult<()> {
        let old = self.acc.take().expect("grow without accumulator");
        let new_size = (old.block.capacity() * 2).max(self.page_size);
        let block = BlockRef::new(new_size, AllocPolicy::LightweightReuse);
        let map = old.map.deep_copy_to(&block)?;
        block.set_root(&map);
        self.acc = Some(MapPage { block, map });
        Ok(())
    }
}

impl<S: AggregateSpec> ErasedAggMerger for MergerImpl<S> {
    fn merge_page(&mut self, page: SealedPage) -> PcResult<()> {
        if self.acc.is_none() {
            self.acc = Some(MapPage::new(self.page_size)?);
        }
        let (src_block, root) = page.open()?;
        let src_map = root.downcast::<MapOf<S>>()?;
        let _ = src_block;
        // Page-at-a-time merge: stored hashes are reused (no per-entry
        // rehash), keys compare stored-to-stored, and first-sighted entries
        // adopt by deep copy. The cursor makes the fold resumable — a
        // `BlockFull` grows the accumulator block and continues exactly
        // where the fault hit, never re-merging a completed entry.
        let mut cursor = 0u32;
        loop {
            let spec = &self.spec;
            let acc = self.acc.as_ref().unwrap();
            let r = acc.map.merge_from(&src_map, &mut cursor, |db, dv, sb, sv| {
                spec.merge(db, dv, sb, sv)
            });
            match r {
                Ok(()) => return Ok(()),
                Err(pc_object::PcError::BlockFull { .. }) => self.grow()?,
                Err(e) => return Err(e),
            }
        }
    }

    fn into_pages(self: Box<Self>) -> PcResult<Vec<SealedPage>> {
        match self.acc {
            Some(acc) => Ok(vec![acc.seal()?]),
            None => Ok(Vec::new()),
        }
    }

    fn finalize(&mut self, writer: &mut SetWriter) -> PcResult<u64> {
        let Some(acc) = self.acc.take() else {
            return Ok(0);
        };
        let mut groups = 0u64;
        let mut entries: Vec<(u64, u32, u32)> = Vec::with_capacity(acc.map.len());
        acc.map.for_each_slot_hashed(|h, _b, k, v| {
            entries.push((h, k, v));
            Ok(())
        })?;
        // Canonical emit order: stored key hash, not slot order. Slot order
        // encodes insertion history, which an out-of-core run replays wave
        // by wave — sorting keeps the output bytes identical to the
        // in-memory run regardless of the spill schedule.
        entries.sort_unstable();
        for (_h, kslot, vslot) in entries {
            let key = S::Key::load_from(acc.block(), kslot);
            writer.write_with(|| {
                let out = self.spec.finalize(&key, acc.block(), vslot)?;
                Ok(out.erase())
            })?;
            groups += 1;
        }
        Ok(groups)
    }
}

impl<S: AggregateSpec> MapPage<S> {
    fn block(&self) -> &BlockRef {
        &self.block
    }
}
