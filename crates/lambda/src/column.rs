//! Columns: the vectors that make up a vector list (§5.2).
//!
//! A pipeline stage consumes and produces whole columns. Object columns hold
//! untyped handles into pinned input/output pages; scalar columns hold plain
//! Rust vectors (the paper's "intermediate data", kept off the output page —
//! Appendix C's "avoiding unwanted in-place allocations").

use pc_object::{AnyHandle, PcError, PcResult};

/// A column of values.
#[derive(Clone)]
pub enum Column {
    Bool(Vec<bool>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    U64(Vec<u64>),
    Str(Vec<Box<str>>),
    Obj(Vec<AnyHandle>),
}

impl Column {
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::U64(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Obj(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Column::Bool(_) => "bool",
            Column::I64(_) => "i64",
            Column::F64(_) => "f64",
            Column::U64(_) => "u64",
            Column::Str(_) => "str",
            Column::Obj(_) => "obj",
        }
    }

    pub fn as_bool(&self) -> PcResult<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => Err(type_err("bool", other)),
        }
    }

    pub fn as_i64(&self) -> PcResult<&[i64]> {
        match self {
            Column::I64(v) => Ok(v),
            other => Err(type_err("i64", other)),
        }
    }

    pub fn as_f64(&self) -> PcResult<&[f64]> {
        match self {
            Column::F64(v) => Ok(v),
            other => Err(type_err("f64", other)),
        }
    }

    pub fn as_u64(&self) -> PcResult<&[u64]> {
        match self {
            Column::U64(v) => Ok(v),
            other => Err(type_err("u64", other)),
        }
    }

    pub fn as_str_col(&self) -> PcResult<&[Box<str>]> {
        match self {
            Column::Str(v) => Ok(v),
            other => Err(type_err("str", other)),
        }
    }

    pub fn as_obj(&self) -> PcResult<&[AnyHandle]> {
        match self {
            Column::Obj(v) => Ok(v),
            other => Err(type_err("obj", other)),
        }
    }

    /// Keeps only the rows where `keep` is true.
    pub fn filter(&self, keep: &[bool]) -> Column {
        fn f<T: Clone>(v: &[T], keep: &[bool]) -> Vec<T> {
            v.iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            Column::Bool(v) => Column::Bool(f(v, keep)),
            Column::I64(v) => Column::I64(f(v, keep)),
            Column::F64(v) => Column::F64(f(v, keep)),
            Column::U64(v) => Column::U64(f(v, keep)),
            Column::Str(v) => Column::Str(f(v, keep)),
            Column::Obj(v) => Column::Obj(f(v, keep)),
        }
    }

    /// Replicates row `i` `counts[i]` times (FLATMAP reshaping).
    pub fn replicate(&self, counts: &[u32]) -> Column {
        fn r<T: Clone>(v: &[T], counts: &[u32]) -> Vec<T> {
            let total: u32 = counts.iter().sum();
            let mut out = Vec::with_capacity(total as usize);
            for (x, &c) in v.iter().zip(counts) {
                for _ in 0..c {
                    out.push(x.clone());
                }
            }
            out
        }
        match self {
            Column::Bool(v) => Column::Bool(r(v, counts)),
            Column::I64(v) => Column::I64(r(v, counts)),
            Column::F64(v) => Column::F64(r(v, counts)),
            Column::U64(v) => Column::U64(r(v, counts)),
            Column::Str(v) => Column::Str(r(v, counts)),
            Column::Obj(v) => Column::Obj(r(v, counts)),
        }
    }

    /// Gathers rows by index (join probe output assembly).
    pub fn gather(&self, idx: &[u32]) -> Column {
        fn g<T: Clone>(v: &[T], idx: &[u32]) -> Vec<T> {
            idx.iter().map(|&i| v[i as usize].clone()).collect()
        }
        match self {
            Column::Bool(v) => Column::Bool(g(v, idx)),
            Column::I64(v) => Column::I64(g(v, idx)),
            Column::F64(v) => Column::F64(g(v, idx)),
            Column::U64(v) => Column::U64(g(v, idx)),
            Column::Str(v) => Column::Str(g(v, idx)),
            Column::Obj(v) => Column::Obj(g(v, idx)),
        }
    }

    /// An empty column of the same type.
    pub fn empty_like(&self) -> Column {
        match self {
            Column::Bool(_) => Column::Bool(Vec::new()),
            Column::I64(_) => Column::I64(Vec::new()),
            Column::F64(_) => Column::F64(Vec::new()),
            Column::U64(_) => Column::U64(Vec::new()),
            Column::Str(_) => Column::Str(Vec::new()),
            Column::Obj(_) => Column::Obj(Vec::new()),
        }
    }
}

fn type_err(expected: &'static str, found: &Column) -> PcError {
    PcError::Catalog(format!(
        "column type mismatch: expected {expected}, found {}",
        found.type_name()
    ))
}

impl std::fmt::Debug for Column {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Column::{}[{}]", self.type_name(), self.len())
    }
}

/// Rust values collectible into a [`Column`] — the return types usable from
/// lambda extraction functions.
pub trait ColValue: 'static + Sized {
    fn collect(v: Vec<Self>) -> Column;
}

impl ColValue for bool {
    fn collect(v: Vec<Self>) -> Column {
        Column::Bool(v)
    }
}

impl ColValue for i64 {
    fn collect(v: Vec<Self>) -> Column {
        Column::I64(v)
    }
}

impl ColValue for f64 {
    fn collect(v: Vec<Self>) -> Column {
        Column::F64(v)
    }
}

impl ColValue for u64 {
    fn collect(v: Vec<Self>) -> Column {
        Column::U64(v)
    }
}

impl ColValue for Box<str> {
    fn collect(v: Vec<Self>) -> Column {
        Column::Str(v)
    }
}

impl ColValue for String {
    fn collect(v: Vec<Self>) -> Column {
        Column::Str(v.into_iter().map(|s| s.into_boxed_str()).collect())
    }
}

impl ColValue for AnyHandle {
    fn collect(v: Vec<Self>) -> Column {
        Column::Obj(v)
    }
}

impl<T: pc_object::PcObjType> ColValue for pc_object::Handle<T> {
    fn collect(v: Vec<Self>) -> Column {
        Column::Obj(v.into_iter().map(|h| h.erase()).collect())
    }
}
