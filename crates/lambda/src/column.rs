//! Columns: the vectors that make up a vector list (§5.2).
//!
//! A pipeline stage consumes and produces whole columns. Object columns hold
//! untyped handles into pinned input/output pages; scalar columns hold plain
//! Rust vectors (the paper's "intermediate data", kept off the output page —
//! Appendix C's "avoiding unwanted in-place allocations").

use pc_object::{AnyHandle, PcError, PcResult};

/// A column of values.
#[derive(Clone)]
pub enum Column {
    Bool(Vec<bool>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    U64(Vec<u64>),
    Str(Vec<Box<str>>),
    Obj(Vec<AnyHandle>),
}

impl Column {
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::U64(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Obj(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Column::Bool(_) => "bool",
            Column::I64(_) => "i64",
            Column::F64(_) => "f64",
            Column::U64(_) => "u64",
            Column::Str(_) => "str",
            Column::Obj(_) => "obj",
        }
    }

    pub fn as_bool(&self) -> PcResult<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => Err(type_err("bool", other)),
        }
    }

    pub fn as_i64(&self) -> PcResult<&[i64]> {
        match self {
            Column::I64(v) => Ok(v),
            other => Err(type_err("i64", other)),
        }
    }

    pub fn as_f64(&self) -> PcResult<&[f64]> {
        match self {
            Column::F64(v) => Ok(v),
            other => Err(type_err("f64", other)),
        }
    }

    pub fn as_u64(&self) -> PcResult<&[u64]> {
        match self {
            Column::U64(v) => Ok(v),
            other => Err(type_err("u64", other)),
        }
    }

    pub fn as_str_col(&self) -> PcResult<&[Box<str>]> {
        match self {
            Column::Str(v) => Ok(v),
            other => Err(type_err("str", other)),
        }
    }

    pub fn as_obj(&self) -> PcResult<&[AnyHandle]> {
        match self {
            Column::Obj(v) => Ok(v),
            other => Err(type_err("obj", other)),
        }
    }

    /// Keeps only the rows where `keep` is true.
    pub fn filter(&self, keep: &[bool]) -> Column {
        fn f<T: Clone>(v: &[T], keep: &[bool]) -> Vec<T> {
            v.iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            Column::Bool(v) => Column::Bool(f(v, keep)),
            Column::I64(v) => Column::I64(f(v, keep)),
            Column::F64(v) => Column::F64(f(v, keep)),
            Column::U64(v) => Column::U64(f(v, keep)),
            Column::Str(v) => Column::Str(f(v, keep)),
            Column::Obj(v) => Column::Obj(f(v, keep)),
        }
    }

    /// Replicates row `i` `counts[i]` times (FLATMAP reshaping).
    pub fn replicate(&self, counts: &[u32]) -> Column {
        fn r<T: Clone>(v: &[T], counts: &[u32]) -> Vec<T> {
            // Sum as usize: a batch of u32 counts can overflow a u32 total.
            let total: usize = counts.iter().map(|&c| c as usize).sum();
            let mut out = Vec::with_capacity(total);
            for (x, &c) in v.iter().zip(counts) {
                for _ in 0..c {
                    out.push(x.clone());
                }
            }
            out
        }
        match self {
            Column::Bool(v) => Column::Bool(r(v, counts)),
            Column::I64(v) => Column::I64(r(v, counts)),
            Column::F64(v) => Column::F64(r(v, counts)),
            Column::U64(v) => Column::U64(r(v, counts)),
            Column::Str(v) => Column::Str(r(v, counts)),
            Column::Obj(v) => Column::Obj(r(v, counts)),
        }
    }

    /// Selection-aware replicate: `counts[i]` applies to row `sel[i]` (or to
    /// row `i` when `sel` is `None`). Output is dense.
    pub fn replicate_sel(&self, counts: &[u32], sel: Option<&[u32]>) -> Column {
        let Some(sel) = sel else {
            return self.replicate(counts);
        };
        fn r<T: Clone>(v: &[T], counts: &[u32], sel: &[u32]) -> Vec<T> {
            let total: usize = counts.iter().map(|&c| c as usize).sum();
            let mut out = Vec::with_capacity(total);
            for (&row, &c) in sel.iter().zip(counts) {
                for _ in 0..c {
                    out.push(v[row as usize].clone());
                }
            }
            out
        }
        match self {
            Column::Bool(v) => Column::Bool(r(v, counts, sel)),
            Column::I64(v) => Column::I64(r(v, counts, sel)),
            Column::F64(v) => Column::F64(r(v, counts, sel)),
            Column::U64(v) => Column::U64(r(v, counts, sel)),
            Column::Str(v) => Column::Str(r(v, counts, sel)),
            Column::Obj(v) => Column::Obj(r(v, counts, sel)),
        }
    }

    /// Gathers rows by index (join probe output assembly, selection-vector
    /// compaction at stage boundaries).
    pub fn gather(&self, idx: &[u32]) -> Column {
        self.gather_pooled(idx, &mut ColumnPool::default())
    }

    /// Gather variant drawing the output allocation from (and sized by) a
    /// recycled [`ColumnPool`] buffer, so steady-state batches allocate
    /// nothing.
    pub fn gather_pooled(&self, idx: &[u32], pool: &mut ColumnPool) -> Column {
        fn g<T: Clone>(v: &[T], idx: &[u32], mut out: Vec<T>) -> Vec<T> {
            out.clear();
            out.reserve(idx.len());
            out.extend(idx.iter().map(|&i| v[i as usize].clone()));
            out
        }
        match self {
            Column::Bool(v) => Column::Bool(g(v, idx, pool.bools.pop().unwrap_or_default())),
            Column::I64(v) => Column::I64(g(v, idx, pool.i64s.pop().unwrap_or_default())),
            Column::F64(v) => Column::F64(g(v, idx, pool.f64s.pop().unwrap_or_default())),
            Column::U64(v) => Column::U64(g(v, idx, pool.u64s.pop().unwrap_or_default())),
            Column::Str(v) => Column::Str(g(v, idx, pool.strs.pop().unwrap_or_default())),
            Column::Obj(v) => Column::Obj(g(v, idx, pool.objs.pop().unwrap_or_default())),
        }
    }

    /// An empty column of the same type.
    pub fn empty_like(&self) -> Column {
        match self {
            Column::Bool(_) => Column::Bool(Vec::new()),
            Column::I64(_) => Column::I64(Vec::new()),
            Column::F64(_) => Column::F64(Vec::new()),
            Column::U64(_) => Column::U64(Vec::new()),
            Column::Str(_) => Column::Str(Vec::new()),
            Column::Obj(_) => Column::Obj(Vec::new()),
        }
    }
}

/// Recycled batch buffers, keyed by element type. The executor drains a
/// finished batch's columns back into the pool (clearing them — which drops
/// object handles and releases their page pins — but keeping the
/// allocation), so the next batch's columns reuse the same heap buffers
/// instead of re-allocating per operator (Appendix C's "near-zero per-row
/// overhead" requires the hot loop to be allocation-free in steady state).
#[derive(Default)]
pub struct ColumnPool {
    pub bools: Vec<Vec<bool>>,
    pub i64s: Vec<Vec<i64>>,
    pub f64s: Vec<Vec<f64>>,
    pub u64s: Vec<Vec<u64>>,
    pub strs: Vec<Vec<Box<str>>>,
    pub objs: Vec<Vec<AnyHandle>>,
    /// Spare selection/gather-index vectors.
    pub sels: Vec<Vec<u32>>,
}

/// Spare buffers kept per element type. Kernel outputs are freshly
/// allocated each batch, so recycling pushes more than the next batch pops;
/// without a cap the pool would grow linearly with batch count.
const POOL_CAP: usize = 32;

fn stash<T>(list: &mut Vec<Vec<T>>, mut v: Vec<T>) {
    v.clear();
    if list.len() < POOL_CAP {
        list.push(v);
    }
}

impl ColumnPool {
    /// Returns a column's backing buffer to the pool. Clearing drops the
    /// elements now (releasing any page pins held by object handles); the
    /// allocation is kept only while the per-type free list is below its
    /// cap, so a long pipeline stage's pool stays batch-sized.
    pub fn recycle(&mut self, col: Column) {
        match col {
            Column::Bool(v) => stash(&mut self.bools, v),
            Column::I64(v) => stash(&mut self.i64s, v),
            Column::F64(v) => stash(&mut self.f64s, v),
            Column::U64(v) => stash(&mut self.u64s, v),
            Column::Str(v) => stash(&mut self.strs, v),
            Column::Obj(v) => stash(&mut self.objs, v),
        }
    }

    /// An empty (but possibly pre-sized) object-handle buffer.
    pub fn take_objs(&mut self) -> Vec<AnyHandle> {
        self.objs.pop().unwrap_or_default()
    }

    /// An empty (but possibly pre-sized) selection/index buffer.
    pub fn take_sel(&mut self) -> Vec<u32> {
        self.sels.pop().unwrap_or_default()
    }

    pub fn recycle_sel(&mut self, sel: Vec<u32>) {
        stash(&mut self.sels, sel);
    }
}

fn type_err(expected: &'static str, found: &Column) -> PcError {
    PcError::Catalog(format!(
        "column type mismatch: expected {expected}, found {}",
        found.type_name()
    ))
}

impl std::fmt::Debug for Column {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Column::{}[{}]", self.type_name(), self.len())
    }
}

/// Rust values collectible into a [`Column`] — the return types usable from
/// lambda extraction functions.
pub trait ColValue: 'static + Sized {
    fn collect(v: Vec<Self>) -> Column;
}

impl ColValue for bool {
    fn collect(v: Vec<Self>) -> Column {
        Column::Bool(v)
    }
}

impl ColValue for i64 {
    fn collect(v: Vec<Self>) -> Column {
        Column::I64(v)
    }
}

impl ColValue for f64 {
    fn collect(v: Vec<Self>) -> Column {
        Column::F64(v)
    }
}

impl ColValue for u64 {
    fn collect(v: Vec<Self>) -> Column {
        Column::U64(v)
    }
}

impl ColValue for Box<str> {
    fn collect(v: Vec<Self>) -> Column {
        Column::Str(v)
    }
}

impl ColValue for String {
    fn collect(v: Vec<Self>) -> Column {
        Column::Str(v.into_iter().map(|s| s.into_boxed_str()).collect())
    }
}

impl ColValue for AnyHandle {
    fn collect(v: Vec<Self>) -> Column {
        Column::Obj(v)
    }
}

impl<T: pc_object::PcObjType> ColValue for pc_object::Handle<T> {
    fn collect(v: Vec<Self>) -> Column {
        Column::Obj(v.into_iter().map(|h| h.erase()).collect())
    }
}
