//! Differential property tests for the vectorized aggregation sink: the
//! batch path (batch hash → radix partition → grouped bulk upsert) and the
//! row-at-a-time reference must produce identical `(key, count, sum)`
//! multisets across random batches, selections, partition counts, and
//! page-escalation sizes — after flushing, shuffling-style merging, and
//! final materialization.

use pc_lambda::agg::AggEngine;
use pc_lambda::{AggregateSpec, Column, ErasedAgg, ErasedAggSink, SetWriter};
use pc_object::{
    make_object, pc_object, AllocScope, AnyObj, BlockRef, Handle, PcResult, PcVec, SealedPage,
};
use proptest::prelude::*;

pc_object! {
    /// The test record: a group key and a payload value.
    pub struct Rec / RecView {
        (key, set_key): i64,
        (val, set_val): i64,
    }
}

struct GroupSum;

impl AggregateSpec for GroupSum {
    type In = Rec;
    type Key = i64;
    type Val = (i64, i64); // (count, sum)
    type Out = PcVec<i64>; // [key, count, sum]

    fn key_of(&self, rec: &Handle<Rec>) -> PcResult<i64> {
        Ok(rec.v().key())
    }

    fn init(&self, _b: &BlockRef, rec: &Handle<Rec>) -> PcResult<(i64, i64)> {
        Ok((1, rec.v().val()))
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Rec>) -> PcResult<()> {
        let (c, s): (i64, i64) = b.read(slot);
        b.write(slot, (c + 1, s + rec.v().val()));
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let (c1, s1): (i64, i64) = dst.read(dst_slot);
        let (c2, s2): (i64, i64) = src.read(src_slot);
        dst.write(dst_slot, (c1 + c2, s1 + s2));
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, val_slot: u32) -> PcResult<Handle<PcVec<i64>>> {
        let (c, s): (i64, i64) = b.read(val_slot);
        let out = make_object::<PcVec<i64>>()?;
        out.push(*key)?;
        out.push(c)?;
        out.push(s)?;
        Ok(out)
    }
}

/// Drains a sink through the full two-phase path (flush → merge every
/// partition page → finalize) and returns the sorted `(key, count, sum)`
/// groups.
fn drain(
    engine: &AggEngine<GroupSum>,
    mut sink: Box<dyn ErasedAggSink>,
    page_size: usize,
) -> Vec<(i64, i64, i64)> {
    let mut merger = engine.new_merger(page_size);
    for (_part, page) in sink.flush().unwrap() {
        let page = page.load().unwrap();
        merger.merge_page(page).unwrap();
    }
    let mut w = SetWriter::new(1 << 18);
    merger.finalize(&mut w).unwrap();
    let mut out = Vec::new();
    for page in w.finish().unwrap() {
        let (_b, root) = SealedPage::from_bytes(&page.to_bytes())
            .unwrap()
            .open()
            .unwrap();
        let v = root.downcast::<PcVec<Handle<AnyObj>>>().unwrap();
        for h in v.iter() {
            let rec = h.assume::<PcVec<i64>>();
            out.push((rec.get(0), rec.get(1), rec.get(2)));
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vectorized_and_rowwise_sinks_agree(
        rows in proptest::collection::vec((0i64..40, -100i64..100), 1..400),
        mask in proptest::collection::vec(any::<bool>(), 400..401),
        partitions in 1usize..6,
        page_size_exp in 12u32..17,
        batch_rows in 16usize..200,
    ) {
        let page_size = 1usize << page_size_exp; // 4 KiB .. 64 KiB: forces
                                                 // mid-burst seals + escalation
        let scope = AllocScope::new(1 << 22);
        let engine = AggEngine::new(GroupSum);
        let mut vectorized = engine.new_sink(partitions, page_size, None);
        let mut rowwise = engine.new_sink(partitions, page_size, None);

        // Build object batches of `batch_rows` rows each, with a selection
        // vector derived from the mask; absorb the same input through both
        // paths.
        let mut model: std::collections::HashMap<i64, (i64, i64)> = Default::default();
        for (chunk_at, chunk) in rows.chunks(batch_rows).enumerate() {
            let mut handles = Vec::with_capacity(chunk.len());
            for &(k, v) in chunk {
                let r = make_object::<Rec>().unwrap();
                r.v().set_key(k).unwrap();
                r.v().set_val(v).unwrap();
                handles.push(r.erase());
            }
            let sel: Vec<u32> = (0..chunk.len())
                .filter(|i| mask[(chunk_at * batch_rows + i) % mask.len()])
                .map(|i| i as u32)
                .collect();
            for &i in &sel {
                let (k, v) = chunk[i as usize];
                let e = model.entry(k).or_insert((0, 0));
                e.0 += 1;
                e.1 += v;
            }
            let col = Column::Obj(handles);
            vectorized.absorb(&col, Some(&sel)).unwrap();
            rowwise.absorb_rowwise(&col, Some(&sel)).unwrap();
        }
        drop(scope);

        let got_vec = drain(&engine, vectorized, page_size);
        let got_row = drain(&engine, rowwise, page_size);
        let mut want: Vec<(i64, i64, i64)> =
            model.into_iter().map(|(k, (c, s))| (k, c, s)).collect();
        want.sort_unstable();
        prop_assert_eq!(&got_vec, &got_row, "paths diverged");
        prop_assert_eq!(got_vec, want, "vectorized path wrong vs model");
    }

    #[test]
    fn dense_batches_agree_across_cardinalities(
        n in 1usize..600,
        card in prop_oneof![Just(1i64), Just(3), Just(16), Just(257)],
        partitions in 1usize..9,
    ) {
        // Dense (no selection) absorb over low and high cardinality,
        // including tiny pages that force the resumable bulk-upsert to seal
        // mid-bucket.
        let scope = AllocScope::new(1 << 22);
        let engine = AggEngine::new(GroupSum);
        let mut vectorized = engine.new_sink(partitions, 4096, None);
        let mut rowwise = engine.new_sink(partitions, 4096, None);
        let mut handles = Vec::with_capacity(n);
        let mut model: std::collections::HashMap<i64, (i64, i64)> = Default::default();
        for i in 0..n {
            let k = (i as i64 * 31) % card;
            let r = make_object::<Rec>().unwrap();
            r.v().set_key(k).unwrap();
            r.v().set_val(i as i64).unwrap();
            handles.push(r.erase());
            let e = model.entry(k).or_insert((0, 0));
            e.0 += 1;
            e.1 += i as i64;
        }
        let col = Column::Obj(handles);
        vectorized.absorb(&col, None).unwrap();
        rowwise.absorb_rowwise(&col, None).unwrap();
        drop(scope);

        let got_vec = drain(&engine, vectorized, 4096);
        let got_row = drain(&engine, rowwise, 4096);
        let mut want: Vec<(i64, i64, i64)> =
            model.into_iter().map(|(k, (c, s))| (k, c, s)).collect();
        want.sort_unstable();
        prop_assert_eq!(&got_vec, &got_row, "paths diverged");
        prop_assert_eq!(got_vec, want, "vectorized path wrong vs model");
    }
}
