//! Verifier-on-everything: every workload in the tree lowers to a plan the
//! TCAP verifier accepts.
//!
//! `Job::compile` verifies every lowered plan, and the cluster re-verifies
//! after optimization before planning (`PcError::PlanRejected` otherwise) —
//! so a successful run of each workload *is* the proof that its plans
//! verify clean, pre- and post-optimize. `verify_plans` is forced on here
//! rather than inherited, so this net holds even if the default flips.
//!
//! Sizes are tiny: the point is plan coverage (every computation family the
//! compilers emit), not throughput.

use plinycompute::cluster::ClusterConfig;
use plinycompute::exec::ExecConfig;
use plinycompute::lillinalg::{DenseMatrix, DistMatrix, LilLinAlg};
use plinycompute::ml::gmm::PcGmm;
use plinycompute::ml::kmeans::{synthetic_points, PcKMeans};
use plinycompute::ml::lda::{synthetic_corpus, PcLda};
use plinycompute::tpch::gen::{generate, unique_parts, TpchConfig};
use plinycompute::tpch::pc_impl;
use plinycompute::PcClient;

fn verifying_client() -> PcClient {
    PcClient::connect(ClusterConfig {
        workers: 2,
        exec: ExecConfig {
            verify_plans: true,
            ..ExecConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("cluster boots")
}

#[test]
fn ml_kmeans_plans_verify_clean() {
    let client = verifying_client();
    let pts = synthetic_points(60, 4, 3, 17);
    let mut km = PcKMeans::init(&client, "ml", "kmpts", &pts, 3).expect("init verifies + runs");
    for _ in 0..2 {
        km.iterate().expect("aggregate plan verifies + runs");
    }
    assert!(km.centroids.iter().flatten().all(|x| x.is_finite()));
}

#[test]
fn ml_gmm_plans_verify_clean() {
    let client = verifying_client();
    let pts = synthetic_points(120, 4, 3, 5);
    let mut gmm = PcGmm::init(&client, "ml", "gmmpts", &pts, 3).expect("init verifies + runs");
    for _ in 0..2 {
        gmm.iterate().expect("E/M plan verifies + runs");
    }
}

#[test]
fn ml_lda_plans_verify_clean() {
    let client = verifying_client();
    let (docs, vocab, topics) = (20, 60, 3);
    let triples = synthetic_corpus(docs, vocab, 3, 12, 11);
    let mut lda = PcLda::init(&client, "lda", &triples, docs, vocab, topics, 0.1, 0.1, 5)
        .expect("init verifies + runs");
    for _ in 0..2 {
        lda.iterate().expect("Gibbs-round plan verifies + runs");
    }
}

#[test]
fn tpch_plans_verify_clean() {
    let client = verifying_client();
    let data = generate(&TpchConfig {
        customers: 200,
        ..Default::default()
    });
    pc_impl::load(&client, "tpch", "customers", &data).expect("load runs");

    let cps = pc_impl::customers_per_supplier(&client, "tpch", "customers")
        .expect("flat_map+aggregate plan verifies + runs");
    assert!(!cps.is_empty(), "cps query returned no suppliers");

    let query = unique_parts(&data[0]);
    let topk = pc_impl::top_k_jaccard(&client, "tpch", "customers", &query, 4)
        .expect("top-k plan verifies + runs");
    assert!(!topk.is_empty(), "top-k query returned nothing");
}

#[test]
fn lillinalg_plans_verify_clean() {
    let client = verifying_client();
    let (n, d) = (48, 3);
    let x = DenseMatrix::from_rows(
        (0..n)
            .map(|i| (0..d).map(|j| ((i * d + j) % 7) as f64 - 3.0).collect())
            .collect(),
    );
    let beta_true = DenseMatrix::from_rows((0..d).map(|i| vec![i as f64 - 1.0]).collect());
    let y = x.matmul(&beta_true);

    let mut la = LilLinAlg::new(client.clone());
    la.load(
        "X",
        DistMatrix::from_dense(&client, "la", "x", &x, 16, d).expect("load plan verifies + runs"),
    );
    la.load(
        "y",
        DistMatrix::from_dense(&client, "la", "y", &y, 16, 1).expect("load plan verifies + runs"),
    );
    // Least squares: multiply, transpose-multiply, and inverse plans.
    let out = la
        .run("beta = (X '* X)^-1 %*% (X '* y)")
        .expect("every DSL-emitted plan verifies + runs");
    let beta = la
        .get(&out)
        .expect("result bound")
        .to_dense()
        .expect("gather runs");
    assert!(
        beta.max_abs_diff(&beta_true) < 1e-6,
        "solver drifted: {}",
        beta.max_abs_diff(&beta_true)
    );
}
