//! Cross-crate integration: a query mixing every computation family on the
//! distributed engine, validated against a straight-line computation.

use plinycompute::prelude::*;

pc_object! {
    pub struct Sale / SaleView {
        (region, set_region): i64,
        (amount, set_amount): i64,
    }
}

pc_object! {
    pub struct Region / RegionView {
        (id, set_id): i64,
        (name, set_name): Handle<PcString>,
    }
}

pc_object! {
    pub struct RegionTotal / RegionTotalView {
        (region, set_region): i64,
        (total, set_total): i64,
        (sales, set_sales): i64,
    }
}

struct TotalAgg;

impl AggregateSpec for TotalAgg {
    type In = Sale;
    type Key = i64;
    type Val = (i64, i64);
    type Out = RegionTotal;

    fn key_of(&self, rec: &Handle<Sale>) -> PcResult<i64> {
        Ok(rec.v().region())
    }
    fn init(&self, _b: &BlockRef, rec: &Handle<Sale>) -> PcResult<(i64, i64)> {
        Ok((rec.v().amount(), 1))
    }
    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Sale>) -> PcResult<()> {
        let (t, n): (i64, i64) = b.read(slot);
        b.write(slot, (t + rec.v().amount(), n + 1));
        Ok(())
    }
    fn merge(&self, dst: &BlockRef, ds: u32, src: &BlockRef, ss: u32) -> PcResult<()> {
        let (t1, n1): (i64, i64) = dst.read(ds);
        let (t2, n2): (i64, i64) = src.read(ss);
        dst.write(ds, (t1 + t2, n1 + n2));
        Ok(())
    }
    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<RegionTotal>> {
        let (t, n): (i64, i64) = b.read(slot);
        let out = make_object::<RegionTotal>()?;
        out.v().set_region(*key)?;
        out.v().set_total(t)?;
        out.v().set_sales(n)?;
        Ok(out)
    }
}

#[test]
fn selection_then_aggregation_then_join_across_cluster() {
    let client = PcClient::connect(ClusterConfig {
        workers: 3,
        exec: ExecConfig {
            batch_size: 64,
            page_size: 1 << 16,
            agg_partitions: 4,
            join_partitions: 8,
            morsel_rows: 256,
            ..ExecConfig::default()
        },
        broadcast_threshold: 8 << 20,
        ..ClusterConfig::default()
    })
    .unwrap();

    // Load sales and regions.
    client.create_or_clear_set("shop", "sales").unwrap();
    let n = 5000usize;
    client
        .store("shop", "sales", n, |i| {
            let s = make_object::<Sale>()?;
            s.v().set_region((i % 11) as i64)?;
            s.v().set_amount((i as i64 * 37) % 1000)?;
            Ok(s.erase())
        })
        .unwrap();
    client.create_or_clear_set("shop", "regions").unwrap();
    client
        .store("shop", "regions", 11, |i| {
            let r = make_object::<Region>()?;
            r.v().set_id(i as i64)?;
            r.v().set_name(PcString::make(&format!("region-{i}"))?)?;
            Ok(r.erase())
        })
        .unwrap();

    // Stage 1: select big sales, aggregate totals per region.
    client
        .set::<Sale>("shop", "sales")
        .filter(|s| s.method("getAmount", |s| s.v().amount()).ge_const(500i64))
        .aggregate(TotalAgg)
        .write_to("shop", "totals")
        .run(&client)
        .unwrap();

    // Stage 2: join totals with region names.
    client
        .set::<Region>("shop", "regions")
        .join(
            &client.set::<RegionTotal>("shop", "totals"),
            |r, t| {
                r.member("id", |r| r.v().id())
                    .eq(t.member("region", |t| t.v().region()))
            },
            "mkReport",
            |r, t| {
                let v = make_object::<PcVec<i64>>()?;
                v.push(r.v().id())?;
                v.push(t.v().total())?;
                v.push(t.v().sales())?;
                Ok(v)
            },
        )
        .write_to("shop", "report")
        .run(&client)
        .unwrap();

    // Validate against straight-line Rust.
    let mut expect: std::collections::HashMap<i64, (i64, i64)> = Default::default();
    for i in 0..n {
        let (region, amount) = ((i % 11) as i64, (i as i64 * 37) % 1000);
        if amount >= 500 {
            let e = expect.entry(region).or_insert((0, 0));
            e.0 += amount;
            e.1 += 1;
        }
    }
    let report = client
        .set::<PcVec<i64>>("shop", "report")
        .collect()
        .unwrap();
    assert_eq!(report.len(), expect.len());
    for row in report {
        let (region, total, count) = (row.get(0), row.get(1), row.get(2));
        assert_eq!(expect[&region], (total, count), "region {region}");
    }
}

#[test]
fn paper_quickstart_shapes_compile_and_run() {
    // The README snippet must actually work.
    let client = PcClient::local_small().unwrap();
    client.create_or_clear_set("Mydb", "Myset").unwrap();
    let _block = AllocScope::new(1024 * 1024);
    let my_vec = make_object::<PcVec<Handle<Sale>>>().unwrap();
    for i in 0..100 {
        let s = make_object::<Sale>().unwrap();
        s.v().set_region(i % 3).unwrap();
        s.v().set_amount(i).unwrap();
        my_vec.push(s).unwrap();
    }
    client.send_data("Mydb", "Myset", my_vec).unwrap();
    assert_eq!(client.set_size("Mydb", "Myset"), 100);
}
