//! Integration tests for the typed `Dataset<T>` / `Job` query API:
//! fluent chains over every computation family, multi-sink jobs with
//! shared-upstream deduplication (asserted via `ExecStats`), and the
//! checked-downcast guarantees of `collect` / `iterate_set`.

use plinycompute::prelude::*;

pc_object! {
    pub struct Sale / SaleView {
        (region, set_region): i64,
        (amount, set_amount): i64,
    }
}

pc_object! {
    pub struct Tagged / TaggedView {
        (region, set_region): i64,
        (bucket, set_bucket): i64,
    }
}

pc_object! {
    pub struct RegionStat / RegionStatView {
        (region, set_region): i64,
        (count, set_count): i64,
        (total, set_total): i64,
    }
}

pc_object! {
    pub struct RegionName / RegionNameView {
        (id, set_id): i64,
        (name, set_name): Handle<PcString>,
    }
}

fn load_sales(client: &PcClient, n: usize) {
    client.create_or_clear_set("shop", "sales").unwrap();
    client
        .store("shop", "sales", n, |i| {
            let s = make_object::<Sale>()?;
            s.v().set_region((i % 7) as i64)?;
            s.v().set_amount((i as i64 * 37) % 1000)?;
            Ok(s.erase())
        })
        .unwrap();
}

struct StatAgg;

impl AggregateSpec for StatAgg {
    type In = Sale;
    type Key = i64;
    type Val = (i64, i64);
    type Out = RegionStat;

    fn key_of(&self, rec: &Handle<Sale>) -> PcResult<i64> {
        Ok(rec.v().region())
    }
    fn init(&self, _b: &BlockRef, rec: &Handle<Sale>) -> PcResult<(i64, i64)> {
        Ok((1, rec.v().amount()))
    }
    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Sale>) -> PcResult<()> {
        let (c, t): (i64, i64) = b.read(slot);
        b.write(slot, (c + 1, t + rec.v().amount()));
        Ok(())
    }
    fn merge(&self, dst: &BlockRef, ds: u32, src: &BlockRef, ss: u32) -> PcResult<()> {
        let (c1, t1): (i64, i64) = dst.read(ds);
        let (c2, t2): (i64, i64) = src.read(ss);
        dst.write(ds, (c1 + c2, t1 + t2));
        Ok(())
    }
    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<RegionStat>> {
        let (c, t): (i64, i64) = b.read(slot);
        let out = make_object::<RegionStat>()?;
        out.v().set_region(*key)?;
        out.v().set_count(c)?;
        out.v().set_total(t)?;
        Ok(out)
    }
}

#[test]
fn filter_select_flatmap_chain() {
    let client = PcClient::local_small().unwrap();
    let n = 2000usize;
    load_sales(&client, n);

    // filter → select retypes each record → flat_map fans out per bucket.
    let tagged = client
        .set::<Sale>("shop", "sales")
        .filter(|s| s.member("amount", |s| s.v().amount()).ge_const(500i64))
        .select("tag", |s| {
            let t = make_object::<Tagged>()?;
            t.v().set_region(s.v().region())?;
            t.v().set_bucket(s.v().amount() / 250)?;
            Ok(t)
        })
        .flat_map("explode", |t| {
            let mut out = Vec::new();
            for b in 0..t.v().bucket() {
                let x = make_object::<Tagged>()?;
                x.v().set_region(t.v().region())?;
                x.v().set_bucket(b)?;
                out.push(x);
            }
            Ok(out)
        })
        .collect()
        .unwrap();

    let mut want = 0usize;
    for i in 0..n {
        let amount = (i as i64 * 37) % 1000;
        if amount >= 500 {
            want += (amount / 250) as usize;
        }
    }
    assert_eq!(tagged.len(), want);
    assert!(tagged.iter().all(|t| t.v().bucket() < 4));
}

#[test]
fn join_aggregate_chain() {
    let client = PcClient::local_small().unwrap();
    let n = 1500usize;
    load_sales(&client, n);
    client.create_or_clear_set("shop", "names").unwrap();
    client
        .store("shop", "names", 7, |i| {
            let r = make_object::<RegionName>()?;
            r.v().set_id(i as i64)?;
            r.v().set_name(PcString::make(&format!("region-{i}"))?)?;
            Ok(r.erase())
        })
        .unwrap();

    let stats = client
        .set::<Sale>("shop", "sales")
        .aggregate(StatAgg)
        .write_to("shop", "stats")
        .run(&client)
        .unwrap();
    assert_eq!(stats.exec.agg_groups, 7);

    // Join the aggregated stats against the name table.
    let rows = client
        .set::<RegionName>("shop", "names")
        .join(
            &client.set::<RegionStat>("shop", "stats"),
            |r, s| {
                r.member("id", |r| r.v().id())
                    .eq(s.member("region", |s| s.v().region()))
            },
            "mkRow",
            |r, s| {
                let v = make_object::<PcVec<i64>>()?;
                v.push(r.v().id())?;
                v.push(s.v().count())?;
                v.push(s.v().total())?;
                Ok(v)
            },
        )
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 7);

    let mut expect: std::collections::HashMap<i64, (i64, i64)> = Default::default();
    for i in 0..n {
        let e = expect.entry((i % 7) as i64).or_insert((0, 0));
        e.0 += 1;
        e.1 += (i as i64 * 37) % 1000;
    }
    for row in rows {
        let (region, count, total) = (row.get(0), row.get(1), row.get(2));
        assert_eq!(expect[&region], (count, total), "region {region}");
    }
}

#[test]
fn multi_sink_job_runs_shared_upstream_once() {
    let client = PcClient::connect(ClusterConfig {
        workers: 2,
        exec: ExecConfig {
            batch_size: 128,
            page_size: 1 << 16,
            agg_partitions: 2,
            join_partitions: 4,
            morsel_rows: 512,
            ..ExecConfig::default()
        },
        broadcast_threshold: 8 << 20,
        ..ClusterConfig::default()
    })
    .unwrap();
    let n = 3000usize;
    load_sales(&client, n);
    let m = (0..n).filter(|i| (*i as i64 * 37) % 1000 >= 500).count();

    // One shared filter feeding two sinks: the filter must execute once
    // (materialized), then each writer reads the materialized rows.
    let big = client
        .set::<Sale>("shop", "sales")
        .filter(|s| s.member("amount", |s| s.v().amount()).ge_const(500i64));
    let stats = Job::new()
        .add(big.write_to("shop", "big_a"))
        .add(big.write_to("shop", "big_b"))
        .run(&client)
        .unwrap();

    // Three pipelines: scan+filter→materialize, then one copy per sink. A
    // non-deduplicated lowering would run the n-row scan twice.
    assert_eq!(stats.exec.pipelines_run, 3, "shared stage must run once");
    assert_eq!(
        stats.exec.rows_in,
        (n + 2 * m) as u64,
        "the n-row source scan must happen exactly once"
    );
    let a = client.set::<Sale>("shop", "big_a").collect().unwrap();
    let b = client.set::<Sale>("shop", "big_b").collect().unwrap();
    assert_eq!(a.len(), m);
    assert_eq!(b.len(), m);

    // Back-to-back runs stay correct: intermediate tmp lists are cleared
    // per execution, never accumulated.
    let stats2 = Job::new()
        .add(big.write_to("shop", "big_a"))
        .add(big.write_to("shop", "big_b"))
        .run(&client)
        .unwrap();
    assert_eq!(stats2.exec.rows_in, (n + 2 * m) as u64);
    assert_eq!(
        client.set::<Sale>("shop", "big_a").collect().unwrap().len(),
        m
    );
}

#[test]
fn collecting_a_set_as_the_wrong_type_is_an_error() {
    let client = PcClient::local_small().unwrap();
    load_sales(&client, 50);

    // The set stores Sale objects; asking for RegionName must fail with a
    // type mismatch, not hand back garbage handles.
    let err = client
        .set::<RegionName>("shop", "sales")
        .collect()
        .unwrap_err();
    assert!(
        matches!(err, PcError::TypeMismatch { .. }),
        "want TypeMismatch, got {err:?}"
    );
    let err = client
        .iterate_set::<RegionName>("shop", "sales")
        .unwrap_err();
    assert!(matches!(err, PcError::TypeMismatch { .. }));

    // A derived chain collects through the same checked path.
    let ok = client
        .set::<Sale>("shop", "sales")
        .filter(|s| s.member("amount", |s| s.v().amount()).ge_const(0i64))
        .collect()
        .unwrap();
    assert_eq!(ok.len(), 50);
}

#[test]
fn drop_set_clears_the_catalog() {
    let client = PcClient::local_small().unwrap();
    load_sales(&client, 120);
    assert_eq!(client.set_size("shop", "sales"), 120);

    client.drop_set("shop", "sales").unwrap();
    assert_eq!(
        client.set_size("shop", "sales"),
        0,
        "set_size must not report stale counts after a drop"
    );
    assert!(!client.cluster().catalog.exists("shop", "sales"));
    // Dropping a nonexistent set is an error, not a silent no-op.
    assert!(client.drop_set("shop", "sales").is_err());
    // The name is free again.
    client.create_set("shop", "sales").unwrap();
}
