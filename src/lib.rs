//! # plinycompute — a Rust reproduction of PlinyCompute (SIGMOD 2018)
//!
//! *"PlinyCompute: A Platform for High-Performance, Distributed,
//! Data-Intensive Tool Development"* (Zou et al.), rebuilt from scratch in
//! Rust. See the README for the architecture tour and DESIGN.md for the
//! paper-to-crate inventory.
//!
//! The facade re-exports the whole system; applications usually start with
//! [`prelude`]:
//!
//! ```
//! use plinycompute::prelude::*;
//!
//! pc_object! {
//!     pub struct Point / PointView {
//!         (x, set_x): f64,
//!     }
//! }
//!
//! let client = PcClient::local_small().unwrap();
//! client.create_set("db", "points").unwrap();
//! client
//!     .store("db", "points", 10, |i| {
//!         let p = make_object::<Point>()?;
//!         p.v().set_x(i as f64)?;
//!         Ok(p.erase())
//!     })
//!     .unwrap();
//! assert_eq!(client.set_size("db", "points"), 10);
//! ```

pub use pc_core::prelude;
pub use pc_core::PcClient;

pub use lillinalg;
pub use pc_baseline as baseline;
pub use pc_cluster as cluster;
pub use pc_core as core;
pub use pc_exec as exec;
pub use pc_lambda as lambda;
pub use pc_ml as ml;
pub use pc_object as object;
pub use pc_storage as storage;
pub use pc_tcap as tcap;
pub use pc_tpch as tpch;
