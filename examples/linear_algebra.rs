//! lilLinAlg example: the paper's distributed least squares one-liner.
//!
//! ```text
//! cargo run --release --example linear_algebra
//! ```

use lillinalg::{DenseMatrix, DistMatrix, LilLinAlg};
use plinycompute::prelude::*;
use rand::{RngExt, SeedableRng};

fn main() -> PcResult<()> {
    let client = PcClient::local()?;
    let (n, d) = (2000, 20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let x = DenseMatrix {
        rows: n,
        cols: d,
        data: (0..n * d).map(|_| rng.random::<f64>() - 0.5).collect(),
    };
    let beta_true = DenseMatrix::from_rows((0..d).map(|i| vec![(i % 7) as f64 - 3.0]).collect());
    let y = x.matmul(&beta_true);

    let mut la = LilLinAlg::new(client.clone());
    la.load("X", DistMatrix::from_dense(&client, "la", "X", &x, 256, d)?);
    la.load("y", DistMatrix::from_dense(&client, "la", "y", &y, 256, 1)?);

    // The paper's program, verbatim.
    la.run("beta = (X '* X)^-1 %*% (X '* y)")?;
    let beta = la.get("beta").unwrap().to_dense()?;

    println!("recovered beta (first 7): {:?}", &beta.data[..7]);
    println!("max |beta - beta*| = {:.2e}", beta.max_abs_diff(&beta_true));
    assert!(beta.max_abs_diff(&beta_true) < 1e-6);
    Ok(())
}
