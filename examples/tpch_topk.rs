//! Denormalized TPC-H example (§8.4): customers-per-supplier and the
//! top-k Jaccard similarity search over nested Customer objects.
//!
//! ```text
//! cargo run --release --example tpch_topk
//! ```

use pc_tpch::gen::{generate, unique_parts, TpchConfig};
use pc_tpch::pc_impl;
use plinycompute::prelude::*;

fn main() -> PcResult<()> {
    let client = PcClient::local()?;
    let data = generate(&TpchConfig {
        customers: 2000,
        ..Default::default()
    });
    pc_impl::load(&client, "tpch", "customers", &data)?;
    println!(
        "loaded {} nested Customer objects",
        client.set_size("tpch", "customers")
    );

    let counts = pc_impl::customers_per_supplier(&client, "tpch", "customers")?;
    println!(
        "customers-per-supplier ({} suppliers); first three:",
        counts.len()
    );
    for (s, n) in counts.iter().take(3) {
        println!("  {s}: {n} customers");
    }

    let query = unique_parts(&data[42]);
    let top = pc_impl::top_k_jaccard(&client, "tpch", "customers", &query, 8)?;
    println!("top-8 customers by Jaccard similarity to customer 42's parts:");
    for (sim, cust) in &top {
        println!("  customer {cust}: {sim:.4}");
    }
    assert_eq!(top[0].1, 42, "the query customer matches itself best");
    Ok(())
}
