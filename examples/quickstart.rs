//! Quickstart: the §3 listing of the paper, end to end.
//!
//! Creates feature-vector objects on a client allocation block, ships the
//! block into the cluster with zero serialization, runs a selection, and
//! reads the results back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use plinycompute::prelude::*;

pc_object! {
    /// The paper's `DataPoint`: a handle to a page-resident vector.
    pub struct DataPoint / DataPointView {
        (label, set_label): i64,
        (data, set_data): Handle<PcVec<f64>>,
    }
}

fn main() -> PcResult<()> {
    // Boot a 4-worker cluster in-process and connect.
    let client = PcClient::local()?;
    client.create_or_clear_set("Mydb", "Myset")?;

    // The §3 listing: makeObjectAllocatorBlock + makeObject + sendData.
    // (8 MiB: 1000 points x 100 doubles plus headers must fit one block.)
    let _block = AllocScope::new(8 * 1024 * 1024);
    let my_vec = make_object::<PcVec<Handle<DataPoint>>>()?;
    for i in 0..1000 {
        let store_me = make_object::<DataPoint>()?;
        store_me.v().set_label(i)?;
        let data = make_object::<PcVec<f64>>()?;
        for j in 0..100 {
            data.push(1.0 * (i * 100 + j) as f64)?;
        }
        store_me.v().set_data(data)?;
        my_vec.push(store_me)?;
    }
    // The occupied portion of the allocation block is transferred in its
    // entirety — no serialization anywhere.
    client.send_data("Mydb", "Myset", my_vec)?;
    println!("loaded {} objects", client.set_size("Mydb", "Myset"));

    // A declarative selection: keep points whose first coordinate exceeds
    // 50000. The typed Dataset chain is written via the lambda calculus, so
    // the optimizer sees intent — and a lambda over the wrong element type
    // would not compile.
    let big = client.set::<DataPoint>("Mydb", "Myset").filter(|p| {
        p.method("firstCoord", |p| p.v().data().get(0))
            .gt_const(50_000.0)
    });
    let stats = big.write_to("Mydb", "big").run(&client)?;
    println!(
        "selection done: {} rows in, {} out, {} bytes shuffled",
        stats.exec.rows_in, stats.exec.rows_out, stats.bytes_shuffled
    );

    let results = client.set::<DataPoint>("Mydb", "big").collect()?;
    println!("{} points passed the filter", results.len());
    assert!(results.iter().all(|p| p.v().data().get(0) > 50_000.0));
    Ok(())
}
