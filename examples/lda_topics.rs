//! LDA example (§8.5): the word-based non-collapsed Gibbs sampler over a
//! semi-synthetic corpus, run on the distributed engine.
//!
//! ```text
//! cargo run --release --example lda_topics
//! ```

use pc_ml::lda::{synthetic_corpus, PcLda};
use plinycompute::prelude::*;

fn main() -> PcResult<()> {
    let client = PcClient::local()?;
    let (docs, vocab, topics) = (200, 400, 4);
    let triples = synthetic_corpus(docs, vocab, topics, 60, 13);
    println!("{} (doc, word, count) triples", triples.len());
    let mut lda = PcLda::init(&client, "lda", &triples, docs, vocab, topics, 0.1, 0.1, 5)?;
    for iter in 0..10 {
        lda.iterate()?;
        let theta = lda.theta()?;
        let sharpness: f64 = theta
            .iter()
            .map(|(_, p)| p.iter().cloned().fold(0.0, f64::max))
            .sum::<f64>()
            / theta.len() as f64;
        println!("iteration {iter}: mean max-topic probability {sharpness:.3}");
    }
    Ok(())
}
