//! k-means example (Appendix A): the aggregation-only clustering loop.
//!
//! ```text
//! cargo run --release --example kmeans
//! ```

use pc_ml::kmeans::{synthetic_points, PcKMeans};
use plinycompute::prelude::*;

fn main() -> PcResult<()> {
    let client = PcClient::local()?;
    let points = synthetic_points(20_000, 10, 5, 42);
    let mut km = PcKMeans::init(&client, "ml", "points", &points, 5)?;
    for iter in 0..8 {
        km.iterate()?;
        let spread: f64 = km
            .centroids
            .iter()
            .map(|c| c.iter().map(|x| x * x).sum::<f64>().sqrt())
            .sum();
        println!("iteration {iter}: centroid norm sum {spread:.3}");
    }
    println!(
        "final centroids (first coordinates): {:?}",
        km.centroids
            .iter()
            .map(|c| (c[0] * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}
